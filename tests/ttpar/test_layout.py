"""PE layout and action padding for the parallel TT algorithm."""

import math

import numpy as np
import pytest

from repro.core.generators import random_instance
from repro.core.problem import Action, TTProblem
from repro.ttpar.layout import TTLayout, choose_ccc_r, pad_actions


class TestPadActions:
    def test_pads_to_power_of_two_with_inf_universe_treatments(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [Action.test({0}, 1.0), Action.treatment({0, 1}, 2.0), Action.treatment({0}, 1.0)],
        )
        padded = pad_actions(p)
        assert padded.n_actions == 4
        pad = padded.actions[3]
        assert pad.is_treatment
        assert pad.subset == p.universe
        assert math.isinf(pad.cost)

    def test_no_padding_when_already_power_of_two(self):
        p = random_instance(3, 2, 2, seed=0)
        if p.n_actions in (4, 8):  # coverage may add actions
            assert pad_actions(p).n_actions == p.n_actions

    def test_padding_preserves_optimum(self):
        from repro.core.sequential import solve_dp

        p = random_instance(4, 3, 2, seed=5)
        assert solve_dp(pad_actions(p)).optimal_cost == pytest.approx(
            solve_dp(p).optimal_cost
        )

    def test_single_action_pads_to_two(self):
        p = TTProblem.build([1.0], [Action.treatment({0}, 1.0)])
        assert pad_actions(p).n_actions == 2


class TestTTLayout:
    def test_dims_and_counts(self):
        lay = TTLayout(k=4, p=3)
        assert lay.dims == 7
        assert lay.n == 128
        assert lay.n_actions == 8

    def test_addr_roundtrip(self):
        lay = TTLayout(k=3, p=2)
        for s in range(8):
            for i in range(4):
                a = lay.addr(s, i)
                assert lay.subset_of(np.array([a]))[0] == s
                assert lay.action_of(np.array([a]))[0] == i

    def test_replica_addresses_alias(self):
        """Addresses above k+p bits map to the same (S, i) pair."""
        lay = TTLayout(k=2, p=1)
        base = lay.addr(0b10, 1)
        replica = base + (1 << lay.dims) * 5
        assert lay.subset_of(np.array([replica]))[0] == 0b10
        assert lay.action_of(np.array([replica]))[0] == 1

    def test_subset_dim(self):
        lay = TTLayout(k=3, p=2)
        assert [lay.subset_dim(e) for e in range(3)] == [2, 3, 4]
        with pytest.raises(ValueError):
            lay.subset_dim(3)

    def test_layer_of(self):
        lay = TTLayout(k=3, p=1)
        addrs = np.array([lay.addr(s, 0) for s in range(8)])
        assert lay.layer_of(addrs).tolist() == [0, 1, 1, 2, 1, 2, 2, 3]

    def test_for_problem(self):
        p = random_instance(4, 3, 2, seed=1)
        lay = TTLayout.for_problem(p)
        assert lay.k == 4
        assert (1 << lay.p) >= p.n_actions

    def test_pe_demand_matches_paper(self):
        """PE count is N' * 2^k = O(N * 2^k)."""
        lay = TTLayout(k=5, p=4)
        assert lay.n == (1 << 4) * (1 << 5)


class TestChooseCccR:
    def test_known_thresholds(self):
        assert choose_ccc_r(3) == 1   # r=1: 1+2=3 dims
        assert choose_ccc_r(4) == 2   # r=2: 2+4=6 dims
        assert choose_ccc_r(6) == 2
        assert choose_ccc_r(7) == 3   # r=3: 3+8=11 dims
        assert choose_ccc_r(11) == 3
        assert choose_ccc_r(12) == 4  # r=4: 4+16=20 dims

    def test_too_large(self):
        with pytest.raises(ValueError):
            choose_ccc_r(100, max_r=4)
