"""The parallel TT algorithm: equivalence with the sequential DP on both
the ideal hypercube and the CCC, step-count model, and the Fig 8/9 trace."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.generators import WORKLOADS, random_instance
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from repro.ttpar.analysis import model_route_steps
from repro.ttpar.dataflow import (
    build_tt_program,
    solve_tt_ccc,
    solve_tt_hypercube,
    trace_r_propagation,
)
from repro.ttpar.layout import pad_actions
from tests.conftest import tt_problems


class TestHypercubeEqualsDP:
    @settings(max_examples=40, deadline=None)
    @given(tt_problems(max_k=5))
    def test_cost_tables_match(self, problem):
        dp = solve_dp(problem)
        par = solve_tt_hypercube(problem)
        assert np.allclose(dp.cost, par.cost)

    @settings(max_examples=40, deadline=None)
    @given(tt_problems(max_k=5))
    def test_argmin_policies_match(self, problem):
        """The ARG register carried through the min-flood must reproduce
        the DP's smallest-index argmin exactly."""
        dp = solve_dp(problem)
        par = solve_tt_hypercube(problem)
        assert (dp.best_action == par.best_action).all()

    @settings(max_examples=25, deadline=None)
    @given(tt_problems(max_k=5))
    def test_extracted_tree_is_optimal(self, problem):
        par = solve_tt_hypercube(problem)
        tree = par.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(par.optimal_cost)

    def test_all_workloads(self):
        for name, make in WORKLOADS.items():
            problem = make(5, seed=2)
            dp = solve_dp(problem)
            par = solve_tt_hypercube(problem)
            assert np.allclose(dp.cost, par.cost), name

    def test_inadequate_rejected(self):
        p = TTProblem.build([1.0, 1.0], [Action.treatment({0}, 1.0)])
        with pytest.raises(ValueError):
            solve_tt_hypercube(p)


class TestCCCEqualsDP:
    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    def test_small_instances(self, schedule):
        for seed in range(3):
            problem = random_instance(3, 2, 2, seed=seed)
            dp = solve_dp(problem)
            par = solve_tt_ccc(problem, schedule=schedule)
            assert np.allclose(dp.cost, par.cost), seed
            assert (dp.best_action == par.best_action).all()

    def test_replicated_ccc_matches(self):
        """A problem smaller than the CCC replicates cleanly."""
        problem = random_instance(2, 1, 1, seed=0)  # few dims
        dp = solve_dp(problem)
        par = solve_tt_ccc(problem, r=2)  # 6-dim CCC, oversized
        assert np.allclose(dp.cost, par.cost)

    def test_explicit_r_too_small_rejected(self):
        problem = random_instance(5, 6, 4, seed=0)  # needs >3+2^... dims
        with pytest.raises(ValueError):
            solve_tt_ccc(problem, r=1)

    def test_slowdown_is_small_constant(self):
        problem = random_instance(4, 3, 3, seed=3)
        par = solve_tt_ccc(problem, schedule="pipelined")
        assert 1.0 < par.ccc_stats.slowdown < 8.0

    def test_medical_on_ccc(self):
        problem = WORKLOADS["medical"](4, seed=1)
        dp = solve_dp(problem)
        par = solve_tt_ccc(problem)
        assert np.allclose(dp.cost, par.cost)
        tree = par.tree()
        tree.validate()


class TestStepModel:
    @settings(max_examples=25, deadline=None)
    @given(tt_problems(max_k=5))
    def test_route_steps_match_model_exactly(self, problem):
        """Measured DimOps == k * (k + log N'): the O(k(k + log N))
        word-step claim with explicit constants."""
        par = solve_tt_hypercube(problem)
        padded_n = pad_actions(problem).n_actions
        assert par.stats.route_steps == model_route_steps(problem.k, padded_n)

    def test_program_length(self):
        problem = random_instance(3, 2, 1, seed=0)
        layout, program = build_tt_program(problem)
        from repro.hypercube.machine import DimOp

        dim_ops = [op for op in program if isinstance(op, DimOp)]
        assert len(dim_ops) == layout.k * (layout.k + layout.p)

    def test_eloop_dims_are_ascending_within_layer(self):
        problem = random_instance(3, 2, 1, seed=0)
        layout, program = build_tt_program(problem)
        from repro.hypercube.machine import DimOp

        dims = [op.dim for op in program if isinstance(op, DimOp)]
        k, p = layout.k, layout.p
        per_layer = k + p
        for j in range(k):
            chunk = dims[j * per_layer : (j + 1) * per_layer]
            assert chunk == list(range(p, p + k)) + list(range(p))


class TestFig89Trace:
    def test_final_sources_are_s_minus_t(self):
        """After the full e-loop, R[S] holds M[S - T] (Fig 8's table)."""
        k, t = 3, 0b011
        trace = trace_r_propagation(k, t)
        final = trace.source[-1]
        for s in range(1 << k):
            assert final[s] == s & ~t

    def test_intermediate_invariant(self):
        """Just before e = t, R[(S-T) ∪ (S ∩ T ∩ I_{t-1})] holds M[S-T]
        — the induction proved in §6.  Equivalently: after iteration e,
        source(S) = S with its T-elements <= e removed."""
        k, t = 4, 0b0110
        trace = trace_r_propagation(k, t)
        for e in range(k):
            removed = t & ((1 << (e + 1)) - 1)  # T-elements 0..e
            for s in range(1 << k):
                assert trace.source[e][s] == s & ~removed

    @settings(max_examples=30)
    @given(tt_problems(min_k=2, max_k=5, max_actions=1))
    def test_property_any_mask(self, problem):
        k = problem.k
        t = problem.actions[0].subset
        final = trace_r_propagation(k, t).source[-1]
        for s in range(1 << k):
            assert final[s] == s & ~t
