"""Bellman verification of cost tables: the solver-independent check."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from repro.ttpar.dataflow import solve_tt_hypercube
from repro.ttpar.verify import bellman_values, verify_cost_table
from tests.conftest import tt_problems


class TestAcceptsCorrectTables:
    @settings(max_examples=30, deadline=None)
    @given(tt_problems(max_k=5))
    def test_dp_table_verifies(self, problem):
        report = verify_cost_table(problem, solve_dp(problem).cost)
        assert report.ok
        assert report.n_violations == 0

    @settings(max_examples=15, deadline=None)
    @given(tt_problems(max_k=4))
    def test_parallel_table_verifies(self, problem):
        report = verify_cost_table(problem, solve_tt_hypercube(problem).cost)
        assert report.ok

    def test_bvm_table_verifies_on_integral_instance(self):
        from repro.ttpar.bvm_tt import solve_tt_bvm

        p = TTProblem.build(
            [3.0, 1.0, 2.0],
            [
                Action.test({0, 1}, 1.0),
                Action.treatment({0}, 4.0),
                Action.treatment({1, 2}, 5.0),
            ],
        )
        assert verify_cost_table(p, solve_tt_bvm(p).cost).ok

    def test_inadequate_table_with_inf_verifies(self):
        p = TTProblem.build(
            [1.0, 1.0], [Action.test({0}, 1.0), Action.treatment({0}, 2.0)]
        )
        assert verify_cost_table(p, solve_dp(p).cost).ok


class TestRejectsCorruptTables:
    @pytest.fixture
    def problem(self, tiny_problem):
        return tiny_problem

    @pytest.fixture
    def good(self, problem):
        return solve_dp(problem).cost

    def test_perturbed_value_rejected(self, problem, good):
        bad = good.copy()
        bad[problem.universe] += 0.5
        report = verify_cost_table(problem, bad)
        assert not report.ok
        assert report.n_violations >= 1

    def test_too_cheap_rejected(self, problem, good):
        bad = good.copy()
        bad[problem.universe] -= 1.0  # claims better than optimal
        assert not verify_cost_table(problem, bad).ok

    def test_nonzero_empty_set_rejected(self, problem, good):
        bad = good.copy()
        bad[0] = 1.0
        assert not verify_cost_table(problem, bad).ok

    def test_spurious_inf_rejected(self, problem, good):
        bad = good.copy()
        bad[0b010] = np.inf  # feasible subset declared infeasible
        assert not verify_cost_table(problem, bad).ok

    def test_spurious_finite_rejected(self):
        p = TTProblem.build(
            [1.0, 1.0], [Action.test({0}, 1.0), Action.treatment({0}, 2.0)]
        )
        bad = solve_dp(p).cost.copy()
        bad[0b10] = 7.0  # untreatable subset declared feasible
        assert not verify_cost_table(p, bad).ok

    def test_wrong_shape_rejected(self, problem):
        with pytest.raises(ValueError):
            verify_cost_table(problem, np.zeros(3))

    def test_first_violation_reported(self, problem, good):
        bad = good.copy()
        bad[0b011] += 1.0
        report = verify_cost_table(problem, bad)
        assert report.first_violation is not None


class TestBellmanOperator:
    def test_fixed_point(self, tiny_problem):
        cost = solve_dp(tiny_problem).cost
        target = bellman_values(tiny_problem, cost)
        assert np.allclose(cost[1:], target[1:])
        assert target[0] == 0.0

    def test_improves_overestimates(self, tiny_problem):
        cost = solve_dp(tiny_problem).cost
        over = cost + 1.0
        over[0] = 0.0
        target = bellman_values(tiny_problem, over)
        # One Bellman application from an overestimate stays >= truth
        # and <= the overestimate's own induced values.
        assert (target[1:] >= cost[1:] - 1e-9).all()
