"""The closed-form BVM cycle model vs the emitted program — exact."""

import pytest

from repro.core import random_instance
from repro.ttpar.bvm_tt import build_bvm_tt
from repro.ttpar.costmodel import (
    dominant_term,
    predict_loop_cycles,
    predict_phase_cycles,
)


def _measured(problem, width=16):
    plan = build_bvm_tt(problem, width=width)
    return plan, plan.prog.phase_breakdown()


class TestExactPhaseModel:
    @pytest.mark.parametrize("k,seed", [(2, 0), (3, 1), (4, 2)])
    def test_all_loop_phases_exact(self, k, seed):
        problem = random_instance(k, 2, 2, seed=seed)
        plan, measured = _measured(problem)
        model = predict_phase_cycles(problem, 16, plan.r)
        for phase, predicted in model.items():
            assert measured[phase] == predicted, phase

    @pytest.mark.parametrize("width", [8, 16, 24])
    def test_exact_across_widths(self, width):
        problem = random_instance(3, 2, 2, seed=5)
        plan, measured = _measured(problem, width=width)
        model = predict_phase_cycles(problem, width, plan.r)
        for phase, predicted in model.items():
            assert measured[phase] == predicted, (phase, width)

    def test_loop_total(self):
        problem = random_instance(3, 2, 2, seed=7)
        plan, measured = _measured(problem)
        loop_phases = ("copy-buffers", "e-loop", "finalize", "min-ascend")
        assert predict_loop_cycles(problem, 16, plan.r) == sum(
            measured[p] for p in loop_phases
        )


class TestModelStructure:
    def test_eloop_dominates_model(self):
        problem = random_instance(4, 3, 2, seed=1)
        model = predict_phase_cycles(problem, 16, 3)
        assert model["e-loop"] > model["min-ascend"]
        assert model["e-loop"] > model["finalize"]

    def test_linear_in_width(self):
        problem = random_instance(3, 2, 2, seed=2)
        narrow = predict_loop_cycles(problem, 8, 2)
        wide = predict_loop_cycles(problem, 32, 2)
        # Not exactly 4x (constant per-phase overheads), but close.
        assert 3.0 < wide / narrow < 4.5

    def test_dominant_term_bounds_loop(self):
        """measured loop cycles / (k·W·(k+logN)·(2Q+1)) in a tight band."""
        ratios = []
        for k, seed in ((2, 0), (3, 1), (4, 2)):
            problem = random_instance(k, 2, 2, seed=seed)
            plan, measured = _measured(problem)
            loop = sum(
                measured[p]
                for p in ("copy-buffers", "e-loop", "finalize", "min-ascend")
            )
            ratios.append(loop / dominant_term(problem, 16, plan.r))
        assert max(ratios) / min(ratios) < 3.0
        assert all(0.1 < r < 10 for r in ratios)
