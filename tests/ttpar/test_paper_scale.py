"""Paper-scale machine-time estimates from the exact cycle model."""

import pytest

from repro.ttpar.costmodel import paper_scale_estimate, predict_phase_cycles_for


class TestPaperScaleEstimate:
    def test_implementable_machine(self):
        """k=10, N=1024 fills the 2^20-PE machine exactly (the sizing
        claim) and solves in well under a second at a mid-80s clock."""
        est = paper_scale_estimate(10, 1024, r=4)
        assert est["pe_count"] == 1 << 20
        assert est["loop_cycles"] > 0
        assert est["seconds_at_clock"] < 1.0

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            paper_scale_estimate(25, 2**10, r=4)

    def test_scaling_with_k(self):
        small = paper_scale_estimate(6, 64, r=4)["loop_cycles"]
        big = paper_scale_estimate(12, 64, r=4)["loop_cycles"]
        assert big > 2 * small  # ~k^2-ish growth in the e-loop

    def test_phases_sum(self):
        est = paper_scale_estimate(8, 256, r=4)
        assert sum(est["phases"].values()) == est["loop_cycles"]

    def test_matches_simulated_sizes(self):
        """At simulable sizes the raw-size model equals the instance
        model (which the test suite already pins to the emitted program)."""
        from repro.core import random_instance
        from repro.ttpar.bvm_tt import build_bvm_tt
        from repro.ttpar.layout import TTLayout

        problem = random_instance(3, 2, 2, seed=0)
        plan = build_bvm_tt(problem, width=16)
        layout = TTLayout.for_problem(problem)
        raw = predict_phase_cycles_for(layout.k, layout.p, 16, plan.r)
        measured = plan.prog.phase_breakdown()
        for phase, val in raw.items():
            assert measured[phase] == val
