"""The bit-level BVM TT program against the sequential DP (exact match on
integral instances, where the fixed-point encoding is lossless)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from repro.ttpar.bvm_tt import build_bvm_tt, solve_tt_bvm
from tests.conftest import tt_problems


def _integral(k, seed, n_tests=2, n_treats=2):
    rng = np.random.default_rng(seed)
    full = (1 << k) - 1
    weights = rng.integers(1, 6, k).astype(float)
    acts = []
    for _ in range(n_tests):
        acts.append(Action.test(int(rng.integers(1, full)), float(rng.integers(0, 6))))
    cov = 0
    for _ in range(n_treats):
        s = int(rng.integers(1, full + 1))
        acts.append(Action.treatment(s, float(rng.integers(1, 6))))
        cov |= s
    if cov != full:
        acts.append(Action.treatment(full & ~cov, 3.0))
    return TTProblem.build(weights, acts)


class TestExactEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_k3_matches_dp(self, seed):
        problem = _integral(3, seed)
        bvm = solve_tt_bvm(problem, width=16)
        dp = solve_dp(problem)
        assert np.allclose(bvm.cost, dp.cost)
        assert (bvm.best_action == dp.best_action).all()

    def test_k2_small_machine(self):
        problem = _integral(2, 11, n_tests=1, n_treats=1)
        bvm = solve_tt_bvm(problem, width=12)
        dp = solve_dp(problem)
        assert np.allclose(bvm.cost, dp.cost)

    @pytest.mark.slow
    def test_k4_on_ccc3(self):
        """2048-PE CCC(3) run — the full 11-dimension machine."""
        problem = _integral(4, 99, n_tests=3, n_treats=3)
        bvm = solve_tt_bvm(problem, width=16)
        dp = solve_dp(problem)
        assert np.allclose(bvm.cost, dp.cost)
        assert (bvm.best_action == dp.best_action).all()

    @settings(max_examples=8, deadline=None)
    @given(tt_problems(min_k=2, max_k=3, max_actions=3, integral=True))
    def test_property_integral_instances(self, problem):
        bvm = solve_tt_bvm(problem, width=20)
        dp = solve_dp(problem)
        assert np.allclose(bvm.cost, dp.cost)

    def test_tiny_worked_example(self, tiny_problem):
        bvm = solve_tt_bvm(tiny_problem, width=16)
        assert bvm.optimal_cost == pytest.approx(37.0)
        tree = bvm.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(37.0)


class TestMachineAccounting:
    def test_cycles_positive_and_reported(self, tiny_problem):
        res = solve_tt_bvm(tiny_problem, width=16)
        assert res.cycles > 1000  # real bit-level work happened
        assert res.r >= 1
        assert res.width == 16

    def test_cycle_count_deterministic(self, tiny_problem):
        a = solve_tt_bvm(tiny_problem, width=16)
        b = solve_tt_bvm(tiny_problem, width=16)
        assert a.cycles == b.cycles

    def test_wider_words_cost_more_cycles(self, tiny_problem):
        narrow = solve_tt_bvm(tiny_problem, width=12)
        wide = solve_tt_bvm(tiny_problem, width=24)
        assert wide.cycles > narrow.cycles

    def test_build_without_run(self, tiny_problem):
        plan = build_bvm_tt(tiny_problem, width=16)
        assert len(plan.prog) > 0
        assert plan.prog.pool.high_water <= 256


class TestEdgeCases:
    def test_inadequate_rejected(self):
        p = TTProblem.build([1.0, 1.0], [Action.treatment({0}, 1.0)])
        with pytest.raises(ValueError):
            solve_tt_bvm(p)

    def test_explicit_r_too_small(self, tiny_problem):
        with pytest.raises(ValueError):
            solve_tt_bvm(tiny_problem, r=1)  # needs 5 dims, CCC(1) has 3

    def test_infeasible_subsets_decode_to_inf(self):
        # Object 1 treatable only via a treatment covering {0,1}; all fine,
        # but test a spec where some *subset* is infeasible: no, adequacy
        # implies all subsets feasible.  Instead check empty-set cost.
        p = _integral(2, 5)
        res = solve_tt_bvm(p)
        assert res.cost[0] == 0.0
        assert res.best_action[0] == -1

    def test_single_treatment_problem(self):
        p = TTProblem.build([2.0, 3.0], [Action.treatment({0, 1}, 4.0)])
        res = solve_tt_bvm(p, width=16)
        dp = solve_dp(p)
        assert np.allclose(res.cost, dp.cost)
        # C(U) = 4 * 5 = 20
        assert res.optimal_cost == pytest.approx(20.0)


class TestPackedBackend:
    """The word-packed backend must be indistinguishable at solve level:
    same tables, same argmin, same cycle count (§ packed execution)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_backends_bit_identical_k3(self, seed):
        problem = _integral(3, seed)
        ref = solve_tt_bvm(problem, width=16, backend="bool")
        fast = solve_tt_bvm(problem, width=16, backend="packed")
        assert ref.backend == "bool" and fast.backend == "packed"
        assert (ref.cost == fast.cost).all()  # bit-identical, not approx
        assert (ref.best_action == fast.best_action).all()
        assert ref.cycles == fast.cycles

    def test_env_var_selects_packed(self, tiny_problem, monkeypatch):
        monkeypatch.setenv("REPRO_BVM_BACKEND", "packed")
        res = solve_tt_bvm(tiny_problem, width=16)
        assert res.backend == "packed"
        assert res.optimal_cost == pytest.approx(37.0)

    def test_packed_matches_dp(self):
        problem = _integral(3, 42)
        fast = solve_tt_bvm(problem, width=16, backend="packed")
        dp = solve_dp(problem)
        assert np.allclose(fast.cost, dp.cost)
        assert (fast.best_action == dp.best_action).all()
