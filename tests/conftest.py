"""Shared fixtures and hypothesis strategies for the test suite.

Also hosts the suite-wide watchdog: no test may hang on a dead pool.
When the ``pytest-timeout`` plugin is installed it takes over (the
``timeout`` marker has the same shape); otherwise a SIGALRM-based
fallback enforces a per-test wall-clock budget (``REPRO_TEST_TIMEOUT``
seconds, default 600) so a regression in the supervised parallel engine
fails fast instead of wedging CI.
"""

import os
import signal
import threading

import pytest
from hypothesis import strategies as st

from repro.core.problem import Action, TTProblem

_DEFAULT_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "600"))

if os.environ.get("REPRO_MP_DEBUG"):
    # Surface multiprocessing's own lifecycle narration (fork, sentinel,
    # terminate, join) — invaluable when a pool teardown misbehaves.
    from multiprocessing import util as _mputil

    _mputil.log_to_stderr(5)


def _marker_timeout(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        return float(marker.args[0])
    return _DEFAULT_TEST_TIMEOUT


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    use_fallback = (
        not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_fallback:
        return (yield)
    seconds = _marker_timeout(item)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded {seconds:g}s watchdog (hung pool / lost barrier?)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@st.composite
def tt_problems(draw, min_k=1, max_k=5, max_actions=6, integral=False):
    """Random *adequate* TT problems.

    ``integral=True`` restricts costs/weights to small integers so that
    fixed-point encodings on the bit-serial machine are exact.
    """
    k = draw(st.integers(min_value=min_k, max_value=max_k))
    full = (1 << k) - 1
    if integral:
        weight = st.integers(min_value=1, max_value=8).map(float)
        cost = st.integers(min_value=0, max_value=8).map(float)
    else:
        weight = st.floats(min_value=0.25, max_value=8.0, allow_nan=False)
        cost = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)
    weights = draw(st.lists(weight, min_size=k, max_size=k))

    n_extra = draw(st.integers(min_value=0, max_value=max_actions))
    actions = []
    for _ in range(n_extra):
        subset = draw(st.integers(min_value=1, max_value=full))
        is_test = draw(st.booleans())
        c = draw(cost)
        if is_test and (subset == full or subset == 0):
            is_test = False
        actions.append(
            Action.test(subset, c) if is_test else Action.treatment(subset, c)
        )
    # Guarantee adequacy with a covering treatment.
    actions.append(Action.treatment(full, draw(cost), name="cover"))
    return TTProblem.build(weights, actions)


@pytest.fixture
def tiny_problem():
    """The worked 3-object example used across the suite."""
    return TTProblem.build(
        weights=[3.0, 1.0, 2.0],
        actions=[
            Action.test({0, 1}, cost=1.0, name="swab"),
            Action.treatment({0}, cost=4.0, name="drugA"),
            Action.treatment({1, 2}, cost=5.0, name="drugB"),
        ],
        name="tiny",
    )
