"""Shared fixtures and hypothesis strategies for the test suite."""

import pytest
from hypothesis import strategies as st

from repro.core.problem import Action, TTProblem


@st.composite
def tt_problems(draw, min_k=1, max_k=5, max_actions=6, integral=False):
    """Random *adequate* TT problems.

    ``integral=True`` restricts costs/weights to small integers so that
    fixed-point encodings on the bit-serial machine are exact.
    """
    k = draw(st.integers(min_value=min_k, max_value=max_k))
    full = (1 << k) - 1
    if integral:
        weight = st.integers(min_value=1, max_value=8).map(float)
        cost = st.integers(min_value=0, max_value=8).map(float)
    else:
        weight = st.floats(min_value=0.25, max_value=8.0, allow_nan=False)
        cost = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)
    weights = draw(st.lists(weight, min_size=k, max_size=k))

    n_extra = draw(st.integers(min_value=0, max_value=max_actions))
    actions = []
    for _ in range(n_extra):
        subset = draw(st.integers(min_value=1, max_value=full))
        is_test = draw(st.booleans())
        c = draw(cost)
        if is_test and (subset == full or subset == 0):
            is_test = False
        actions.append(
            Action.test(subset, c) if is_test else Action.treatment(subset, c)
        )
    # Guarantee adequacy with a covering treatment.
    actions.append(Action.treatment(full, draw(cost), name="cover"))
    return TTProblem.build(weights, actions)


@pytest.fixture
def tiny_problem():
    """The worked 3-object example used across the suite."""
    return TTProblem.build(
        weights=[3.0, 1.0, 2.0],
        actions=[
            Action.test({0, 1}, cost=1.0, name="swab"),
            Action.treatment({0}, cost=4.0, name="drugA"),
            Action.treatment({1, 2}, cost=5.0, name="drugB"),
        ],
        name="tiny",
    )
