"""Tests for vertical integer packing and word-level reference semantics."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intcodec import (
    pack_vertical,
    saturating_add,
    unpack_vertical,
    unsigned_less_than,
)


class TestVerticalPacking:
    def test_roundtrip(self):
        vals = [0, 1, 2, 100, 255]
        rows = pack_vertical(vals, 8)
        assert unpack_vertical(rows).tolist() == vals

    def test_row_is_bit_slice(self):
        rows = pack_vertical([0b1010, 0b0101], 4)
        assert rows[0].tolist() == [False, True]
        assert rows[1].tolist() == [True, False]

    @given(st.lists(st.integers(min_value=0, max_value=2**12 - 1), min_size=1, max_size=16))
    def test_roundtrip_property(self, vals):
        assert unpack_vertical(pack_vertical(vals, 12)).tolist() == vals


class TestSaturatingAdd:
    def test_plain_add(self):
        out = saturating_add([1, 2], [3, 4], width=8)
        assert out.tolist() == [4, 6]

    def test_saturates_at_all_ones(self):
        out = saturating_add([250, 255], [10, 1], width=8)
        assert out.tolist() == [255, 255]

    def test_inf_absorbing(self):
        inf = 255
        out = saturating_add([inf], [0], width=8)
        assert out.tolist() == [inf]

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_never_exceeds_top(self, xs, y):
        ys = [y] * len(xs)
        out = saturating_add(xs, ys, width=16)
        assert (out <= 2**16 - 1).all()
        expected = [min(a + y, 2**16 - 1) for a in xs]
        assert out.tolist() == expected


class TestUnsignedLessThan:
    def test_basic(self):
        assert unsigned_less_than([1, 5, 5], [2, 5, 4]).tolist() == [True, False, False]

    @given(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=2**20),
    )
    def test_matches_python(self, a, b):
        assert bool(unsigned_less_than([a], [b])[0]) == (a < b)
