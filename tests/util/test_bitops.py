"""Unit and property tests for repro.util.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    all_subsets,
    bit,
    bit_matrix,
    bits_of,
    from_bit_matrix,
    ilog2,
    is_power_of_two,
    iter_submasks,
    mask_of,
    popcount,
    popcount_array,
    subset_str,
    subsets_of_size,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount((1 << 12) - 1) == 12

    def test_single_bits(self):
        for j in range(30):
            assert popcount(1 << j) == 1

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_bin_count(self, x):
        assert popcount(x) == bin(x).count("1")


class TestPopcountArray:
    def test_vector(self):
        masks = np.array([0, 1, 3, 7, 8, 255])
        assert popcount_array(masks).tolist() == [0, 1, 2, 3, 1, 8]

    def test_explicit_width(self):
        masks = np.arange(16)
        assert popcount_array(masks, k=4).tolist() == [popcount(m) for m in range(16)]

    def test_empty(self):
        assert popcount_array(np.array([], dtype=np.int64)).shape == (0,)

    @given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=30))
    def test_matches_scalar(self, xs):
        arr = np.array(xs, dtype=np.int64)
        assert popcount_array(arr).tolist() == [popcount(x) for x in xs]


class TestBitsAndMasks:
    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    def test_bits_of_roundtrip(self):
        mask = 0b101101
        assert mask_of(bits_of(mask)) == mask

    def test_bits_of_order(self):
        assert list(bits_of(0b10110)) == [1, 2, 4]

    def test_mask_of_empty(self):
        assert mask_of([]) == 0

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_mask_roundtrip(self, items):
        assert set(bits_of(mask_of(items))) == items


class TestSubsetEnumeration:
    def test_sizes_partition_universe(self):
        k = 6
        seen = []
        for j in range(k + 1):
            seen.extend(subsets_of_size(k, j))
        assert sorted(seen) == list(all_subsets(k))

    def test_layer_has_correct_popcounts(self):
        for j in range(5):
            assert all(popcount(s) == j for s in subsets_of_size(4, j))

    def test_layer_count_is_binomial(self):
        import math

        for k in range(1, 8):
            for j in range(k + 1):
                assert len(list(subsets_of_size(k, j))) == math.comb(k, j)

    def test_ascending_order(self):
        layer = list(subsets_of_size(6, 3))
        assert layer == sorted(layer)

    def test_out_of_range(self):
        assert list(subsets_of_size(3, 4)) == []
        assert list(subsets_of_size(3, -1)) == []

    def test_submasks(self):
        subs = set(iter_submasks(0b101))
        assert subs == {0b000, 0b001, 0b100, 0b101}

    @given(st.integers(min_value=0, max_value=2**10 - 1))
    def test_submask_count(self, mask):
        assert len(list(iter_submasks(mask))) == 1 << popcount(mask)


class TestSubsetStr:
    def test_empty(self):
        assert subset_str(0) == "{}"

    def test_nonempty(self):
        assert subset_str(0b1011) == "{0,1,3}"


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(2**17) == 17

    def test_ilog2_rejects(self):
        with pytest.raises(ValueError):
            ilog2(12)


class TestBitMatrix:
    def test_roundtrip(self):
        vals = np.array([0, 1, 5, 255, 128])
        rows = bit_matrix(vals, 8)
        assert rows.shape == (8, 5)
        assert from_bit_matrix(rows).tolist() == vals.tolist()

    def test_lsb_first(self):
        rows = bit_matrix(np.array([1]), 4)
        assert rows[:, 0].tolist() == [True, False, False, False]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bit_matrix(np.array([256]), 8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_matrix(np.array([-1]), 8)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            bit_matrix(np.zeros((2, 2)), 4)
        with pytest.raises(ValueError):
            from_bit_matrix(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            bit_matrix(np.array([1]), 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20)
    )
    def test_roundtrip_property(self, vals):
        arr = np.array(vals, dtype=np.int64)
        assert from_bit_matrix(bit_matrix(arr, 16)).tolist() == vals
