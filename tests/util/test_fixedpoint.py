"""Tests for the fixed-point cost encoding used by the BVM."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fixedpoint import (
    INF_WORD,
    FixedPointScale,
    _pow2_at_most,
    choose_scale,
)


class TestInfWord:
    def test_values(self):
        assert INF_WORD(8) == 255
        assert INF_WORD(16) == 65535


class TestFixedPointScale:
    def test_encode_decode_exact_integers(self):
        fps = FixedPointScale(width=16, scale=1.0)
        for v in [0, 1, 37, 65534]:
            assert fps.decode(fps.encode(v)) == v

    def test_inf_sentinel_roundtrip(self):
        fps = FixedPointScale(width=12, scale=2.0)
        assert fps.encode(math.inf) == fps.inf
        assert fps.decode(fps.inf) == math.inf

    def test_max_value_excludes_sentinel(self):
        fps = FixedPointScale(width=8, scale=1.0)
        assert fps.max_value == 254
        assert fps.encode(254) == 254
        with pytest.raises(OverflowError):
            fps.encode(255)

    def test_negative_rejected(self):
        fps = FixedPointScale(width=8, scale=1.0)
        with pytest.raises(ValueError):
            fps.encode(-1.0)

    def test_scaling(self):
        fps = FixedPointScale(width=16, scale=8.0)
        assert fps.encode(2.5) == 20
        assert fps.decode(20) == 2.5

    def test_array_roundtrip(self):
        fps = FixedPointScale(width=16, scale=4.0)
        xs = np.array([0.0, 0.25, 10.5, math.inf])
        enc = fps.encode_array(xs)
        dec = fps.decode_array(enc)
        assert dec.tolist() == xs.tolist()

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_roundtrip_error_bounded(self, x):
        fps = FixedPointScale(width=32, scale=64.0)
        assert abs(fps.decode(fps.encode(x)) - x) <= 0.5 / fps.scale


class TestChooseScale:
    def test_power_of_two_scale(self):
        fps = choose_scale(costs=[1.0, 2.0], weights=[1.0, 1.0], k=2, width=24)
        assert math.log2(fps.scale) == int(math.log2(fps.scale))

    def test_dp_bound_encodable(self):
        costs = [3.0, 7.0, 1.5]
        weights = [2.0, 5.0]
        fps = choose_scale(costs, weights, k=2, width=24)
        bound = sum(costs) * sum(weights) * 4
        assert fps.encode(bound) <= fps.max_value  # must not overflow

    def test_integer_costs_exact_when_room(self):
        fps = choose_scale(costs=[1.0, 2.0, 3.0], weights=[1.0, 1.0], k=2, width=24)
        # scale >= 1 here, and power-of-two scaling keeps integers exact
        assert fps.scale >= 1.0
        assert fps.decode(fps.encode(5.0)) == 5.0

    def test_too_narrow_width_raises(self):
        with pytest.raises(OverflowError):
            choose_scale(costs=[1e9], weights=[1e9], k=10, width=4)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=6),
        st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=6),
    )
    def test_worst_case_value_fits(self, costs, weights):
        k = len(weights)
        fps = choose_scale(costs, weights, k, width=40)
        worst = sum(costs) * sum(weights) * max(4, k)
        assert round(worst * fps.scale) <= fps.max_value


class TestBoundary:
    """Regression tests for the ``max_value = INF_WORD - 1`` edge.

    ``2**floor(log2(x))`` overshoots when ``x`` sits one ULP below a power
    of two (``log2`` rounds to nearest); an overshooting scale would make
    an optimum that lands exactly on the DP bound overflow into the INF
    sentinel.
    """

    def test_pow2_at_most_never_exceeds(self):
        just_below = float(np.nextafter(2.0**20, 0))
        assert _pow2_at_most(just_below) == 2.0**19
        assert _pow2_at_most(2.0**20) == 2.0**20
        assert _pow2_at_most(float(np.nextafter(0.25, 0))) == 0.125

    @given(st.integers(min_value=-30, max_value=30))
    def test_pow2_at_most_property(self, e):
        for x in (2.0**e, float(np.nextafter(2.0**e, 0)), 1.5 * 2.0**e):
            got = _pow2_at_most(x)
            assert got <= x
            assert x < 2 * got  # still the *largest* such power

    @pytest.mark.parametrize("width", [4, 8, 12, 16, 24, 32])
    def test_bound_value_encodes_at_every_width(self, width):
        """An optimum exactly on the DP bound must encode, never hit INF."""
        for csum, wsum, k in [(1.0, 1.0, 4), (3.0, 7.0, 5), (1e6, 1e-3, 12)]:
            fps = choose_scale([csum], [wsum], k, width=width)
            bound = max(1.0, csum * wsum * max(4, k))
            v = fps.encode(bound)
            assert v <= fps.max_value == INF_WORD(width) - 1
            assert v != fps.inf

    def test_bound_one_ulp_below_power_of_two(self):
        """Craft ``max_enc / bound`` a hair below a power of two."""
        width = 21  # max_enc = 2**21 - 2
        bound_target = (2**width - 2) / 2.0**10
        # choose_scale computes bound = costs.sum() * weights.sum() * k
        fps = choose_scale([bound_target / 4.0], [1.0], k=4, width=width)
        bound = bound_target
        assert round(bound * fps.scale) <= fps.max_value
        fps.encode(bound)  # must not raise OverflowError
