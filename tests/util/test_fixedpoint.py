"""Tests for the fixed-point cost encoding used by the BVM."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fixedpoint import INF_WORD, FixedPointScale, choose_scale


class TestInfWord:
    def test_values(self):
        assert INF_WORD(8) == 255
        assert INF_WORD(16) == 65535


class TestFixedPointScale:
    def test_encode_decode_exact_integers(self):
        fps = FixedPointScale(width=16, scale=1.0)
        for v in [0, 1, 37, 65534]:
            assert fps.decode(fps.encode(v)) == v

    def test_inf_sentinel_roundtrip(self):
        fps = FixedPointScale(width=12, scale=2.0)
        assert fps.encode(math.inf) == fps.inf
        assert fps.decode(fps.inf) == math.inf

    def test_max_value_excludes_sentinel(self):
        fps = FixedPointScale(width=8, scale=1.0)
        assert fps.max_value == 254
        assert fps.encode(254) == 254
        with pytest.raises(OverflowError):
            fps.encode(255)

    def test_negative_rejected(self):
        fps = FixedPointScale(width=8, scale=1.0)
        with pytest.raises(ValueError):
            fps.encode(-1.0)

    def test_scaling(self):
        fps = FixedPointScale(width=16, scale=8.0)
        assert fps.encode(2.5) == 20
        assert fps.decode(20) == 2.5

    def test_array_roundtrip(self):
        fps = FixedPointScale(width=16, scale=4.0)
        xs = np.array([0.0, 0.25, 10.5, math.inf])
        enc = fps.encode_array(xs)
        dec = fps.decode_array(enc)
        assert dec.tolist() == xs.tolist()

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_roundtrip_error_bounded(self, x):
        fps = FixedPointScale(width=32, scale=64.0)
        assert abs(fps.decode(fps.encode(x)) - x) <= 0.5 / fps.scale


class TestChooseScale:
    def test_power_of_two_scale(self):
        fps = choose_scale(costs=[1.0, 2.0], weights=[1.0, 1.0], k=2, width=24)
        assert math.log2(fps.scale) == int(math.log2(fps.scale))

    def test_dp_bound_encodable(self):
        costs = [3.0, 7.0, 1.5]
        weights = [2.0, 5.0]
        fps = choose_scale(costs, weights, k=2, width=24)
        bound = sum(costs) * sum(weights) * 4
        assert fps.encode(bound) <= fps.max_value  # must not overflow

    def test_integer_costs_exact_when_room(self):
        fps = choose_scale(costs=[1.0, 2.0, 3.0], weights=[1.0, 1.0], k=2, width=24)
        # scale >= 1 here, and power-of-two scaling keeps integers exact
        assert fps.scale >= 1.0
        assert fps.decode(fps.encode(5.0)) == 5.0

    def test_too_narrow_width_raises(self):
        with pytest.raises(OverflowError):
            choose_scale(costs=[1e9], weights=[1e9], k=10, width=4)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=6),
        st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=6),
    )
    def test_worst_case_value_fits(self, costs, weights):
        k = len(weights)
        fps = choose_scale(costs, weights, k, width=40)
        worst = sum(costs) * sum(weights) * max(4, k)
        assert round(worst * fps.scale) <= fps.max_value
