"""End-to-end harness and CLI tests for `verify-exhaustive`.

A budgeted slice of the quick bounds must come back clean; a
deliberately broken backend injected into the registry must produce a
recorded, shrunken, *emitted* discrepancy and CLI exit code 1.  The
broken-backend path is the only honest test that the harness can fail —
a sweep that cannot fail verifies nothing.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.sequential import solve_dp
from repro.verify import Bounds, run_verification
from repro.verify.backends import BACKEND_FACTORIES, VerifyBackend

TINY = Bounds(name="tiny", max_k=2, max_actions=2, bvm_stride=5)


class TestRunVerification:
    def test_tiny_space_clean(self):
        report = run_verification(TINY, backend_names=["numpy", "kernel"])
        assert report.ok
        assert report.checked_instances == report.total_instances
        assert report.backend_checks["numpy"] == report.total_instances
        assert report.property_checks["bellman"] == report.total_instances
        assert report.to_dict()["ok"] is True

    def test_budget_is_stride_not_prefix(self):
        report = run_verification(TINY, backend_names=["numpy"], budget=50)
        assert report.ok
        assert report.checked_instances <= 50 + 1
        # A prefix would only ever see k=1; the stride must reach k=2.
        assert report.checked_instances < report.total_instances

    def test_broken_backend_is_caught_shrunk_and_emitted(self, tmp_path, monkeypatch):
        class OffByOneBackend(VerifyBackend):
            name = "broken"

            def tables(self, problem):
                r = solve_dp(problem)
                cost = np.array(r.cost, copy=True)
                cost[problem.universe] += 1.0  # wrong on every instance
                return cost, r.best_action

        monkeypatch.setitem(BACKEND_FACTORIES, "broken", OffByOneBackend)
        report = run_verification(
            TINY,
            backend_names=["broken"],
            budget=30,
            emit_dir=str(tmp_path),
            max_failures=3,
        )
        assert not report.ok
        assert len(report.discrepancies) == 3  # capped, sweep continued
        disc = report.discrepancies[0]
        assert disc.check == "backend:broken"
        assert "cost differs" in disc.detail
        assert disc.emitted_path is not None
        body = (tmp_path / disc.emitted_path.split("/")[-1]).read_text()
        assert "run_check" in body and "backend:broken" in body
        # Emitted file is syntactically valid Python.
        compile(body, disc.emitted_path, "exec")

    def test_shrinking_can_be_disabled(self, monkeypatch):
        class AlwaysWrong(VerifyBackend):
            name = "broken"

            def tables(self, problem):
                r = solve_dp(problem)
                return r.cost + 1.0, r.best_action

        monkeypatch.setitem(BACKEND_FACTORIES, "broken", AlwaysWrong)
        report = run_verification(
            TINY,
            backend_names=["broken"],
            budget=10,
            shrink_failures=False,
            max_failures=1,
        )
        (disc,) = report.discrepancies
        assert disc.shrunk_json == disc.problem_json


class TestCLI:
    def test_clean_run_exit_0(self, capsys):
        rc = main(
            [
                "verify-exhaustive",
                "--bounds",
                "quick",
                "--budget",
                "40",
                "--backends",
                "numpy",
            ]
        )
        assert rc == 0
        assert "OK: all backends bit-identical" in capsys.readouterr().out

    def test_json_report(self, capsys):
        rc = main(
            [
                "verify-exhaustive",
                "--budget",
                "25",
                "--backends",
                "numpy,kernel",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert set(data["backend_checks"]) == {"numpy", "kernel"}

    def test_unknown_backend_exit_2(self, capsys):
        rc = main(["verify-exhaustive", "--backends", "warp-drive"])
        assert rc == 2
        assert "unknown verify backend" in capsys.readouterr().err

    def test_bad_budget_exit_2(self):
        assert main(["verify-exhaustive", "--budget", "0"]) == 2

    def test_broken_backend_exit_1(self, tmp_path, monkeypatch, capsys):
        class Liar(VerifyBackend):
            name = "liar"

            def tables(self, problem):
                r = solve_dp(problem)
                best = np.array(r.best_action, copy=True)
                best[problem.universe] = -1
                return r.cost, best

        monkeypatch.setitem(BACKEND_FACTORIES, "liar", Liar)
        rc = main(
            [
                "verify-exhaustive",
                "--budget",
                "20",
                "--backends",
                "liar",
                "--max-failures",
                "1",
                "--emit-dir",
                str(tmp_path),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "backend:liar" in out
        emitted = list(tmp_path.glob("test_repro_*.py"))
        assert emitted, "reproducer file must be written"


@pytest.mark.slow
class TestBudgetedQuickSweep:
    """A strided slice of the quick space, *every* backend.

    The unbudgeted quick sweep (~80 s) and the full k<=4 space run in
    CI's dedicated `verify-exhaustive` jobs via the CLI; this keeps a
    representative all-backend slice in the default test run.
    """

    def test_quick_bounds_slice_clean(self):
        from repro.verify import QUICK

        report = run_verification(QUICK, budget=1200)
        assert report.ok, report.summary()
        assert report.backend_checks["parallel"] > 0
        assert report.backend_checks["engine-batch"] > 0
