"""Backend registry and metamorphic property unit tests.

The harness integration test (``test_harness_cli.py``) sweeps a budgeted
slice end to end; this file checks the pieces in isolation — every
registered backend reproduces the oracle on hand-picked stressors
(including infeasible and zero-weight instances), every property holds
on solvable instances, and — crucially — each property *fails* on a
deliberately corrupted input, because a checker that cannot fail checks
nothing.
"""

import numpy as np
import pytest

from repro.core.generators import random_instance
from repro.core.problem import Action, ActionKind, TTProblem
from repro.core.sequential import solve_dp_reference
from repro.verify import (
    BACKEND_FACTORIES,
    PROPERTIES,
    default_backend_names,
    make_backends,
    run_check,
    run_property,
)

# Hand-picked stressors: ties everywhere, zero costs, zero weights,
# infeasible, single-object, single-action.
STRESSORS = [
    TTProblem.build([1.0], [Action.treatment(0b1, 0.0)], name="k1-free-cure"),
    TTProblem.build([1.0], [Action.test(0b1, 1.0)], name="k1-test-only-infeasible"),
    TTProblem.build(
        [1.0, 1.0],
        [Action.test(0b01, 1.0), Action.treatment(0b11, 1.0)],
        name="k2-basic",
    ),
    TTProblem.build(
        [0.0, 1.0],
        [Action.treatment(0b01, 1.0), Action.treatment(0b10, 1.0)],
        name="k2-zero-weight",
    ),
    TTProblem.build(
        [1.0, 1.0, 1.0],
        [
            Action.test(0b011, 0.0),
            Action.test(0b011, 0.0),
            Action.treatment(0b111, 0.0),
        ],
        name="k3-all-zero-cost-dup",
    ),
    TTProblem.build(
        [2.0, 1.0, 1.0],
        [Action.test(0b001, 1.0), Action.treatment(0b011, 2.0)],
        name="k3-infeasible",
    ),
    random_instance(4, n_tests=3, n_treatments=3, seed=5),
]


class TestBackends:
    @pytest.mark.parametrize("name", sorted(BACKEND_FACTORIES))
    def test_matches_reference_on_stressors(self, name):
        (backend,) = make_backends([name])
        try:
            for problem in STRESSORS:
                got = backend.tables(problem)
                if got is None:
                    assert not backend.accepts(problem)
                    continue
                ref = solve_dp_reference(problem)
                assert np.array_equal(got[0], ref.cost), (name, problem.name)
                assert np.array_equal(got[1], ref.best_action), (name, problem.name)
        finally:
            backend.close()

    def test_batch_matches_single(self):
        (backend,) = make_backends(["engine-batch"])
        try:
            solvable = [p for p in STRESSORS]
            batch = backend.tables_batch(solvable)
            for problem, got in zip(solvable, batch):
                ref = solve_dp_reference(problem)
                assert np.array_equal(got[0], ref.cost)
                assert np.array_equal(got[1], ref.best_action)
        finally:
            backend.close()

    def test_default_names_exclude_reference(self):
        names = default_backend_names()
        assert "reference" not in names
        assert set(names) <= set(BACKEND_FACTORIES)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown verify backend"):
            make_backends(["warp-drive"])


class TestProperties:
    @pytest.mark.parametrize("prop", sorted(PROPERTIES))
    @pytest.mark.parametrize("problem", STRESSORS, ids=lambda p: p.name)
    def test_holds_on_stressors(self, prop, problem):
        assert run_property(prop, problem) is None

    def test_rederive_rejects_wrong_policy(self):
        import dataclasses

        problem = STRESSORS[2]
        ref = solve_dp_reference(problem)
        wrong = np.array(ref.best_action, copy=True)
        wrong[problem.universe] = (wrong[problem.universe] + 1) % problem.n_actions
        broken = dataclasses.replace(ref, best_action=wrong)
        assert PROPERTIES["rederive-policy"](problem, broken) is not None

    def test_bellman_rejects_corrupt_cost(self):
        import dataclasses

        problem = STRESSORS[2]
        ref = solve_dp_reference(problem)
        bad = np.array(ref.cost, copy=True)
        bad[problem.universe] += 1.0
        broken = dataclasses.replace(ref, cost=bad)
        assert PROPERTIES["bellman"](problem, broken) is not None


class TestRunCheck:
    def test_property_check_roundtrip(self):
        assert run_check("property:bellman", STRESSORS[2]) is None

    def test_backend_check_roundtrip(self):
        assert run_check("backend:numpy", STRESSORS[2]) is None

    def test_bad_check_name(self):
        with pytest.raises(ValueError, match="property:.*or 'backend:"):
            run_check("vibes", STRESSORS[2])
        with pytest.raises(ValueError, match="unknown property"):
            run_check("property:vibes", STRESSORS[2])
