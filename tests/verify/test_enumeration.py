"""Enumeration correctness: the harness is only as strong as its space.

The critical property is *completeness up to relabeling*: every raw
action multiset must be reachable from some retained canonical structure
by permuting objects.  A dedup bug that silently drops an orbit would
turn "exhaustive" into "mostly", which is the failure mode this file
exists to prevent — checked here by brute force at small sizes.
"""

from itertools import combinations_with_replacement, permutations

import pytest

from repro.verify import (
    FULL,
    QUICK,
    Bounds,
    canonical_structures,
    cost_patterns,
    count_instances,
    enumerate_instances,
    weight_patterns,
)


def permute_structure(struct, perm, k):
    n_sub = 1 << k

    def map_atom(atom):
        kind, subset = divmod(atom, n_sub)
        out = 0
        for j in range(k):
            if (subset >> j) & 1:
                out |= 1 << perm[j]
        return kind * n_sub + out

    return tuple(sorted(map_atom(a) for a in struct))


class TestCanonicalStructures:
    @pytest.mark.parametrize("k,max_actions", [(1, 2), (2, 2), (2, 3), (3, 2)])
    def test_complete_and_minimal(self, k, max_actions):
        """Brute-force ground truth: one representative per orbit, the
        lexicographically least, and nothing else."""
        n_atoms = 2 * (1 << k)
        raw = set()
        for n in range(1, max_actions + 1):
            raw.update(combinations_with_replacement(range(n_atoms), n))
        expected = {
            min(permute_structure(s, perm, k) for perm in permutations(range(k)))
            for s in raw
        }
        got = canonical_structures(k, max_actions)
        assert set(got) == expected
        assert len(got) == len(set(got))

    def test_structures_sorted_atoms(self):
        for struct in canonical_structures(3, 3):
            assert list(struct) == sorted(struct)

    def test_k1_trivial_group_keeps_everything(self):
        # S_1 is trivial: every multiset is its own orbit.
        assert len(canonical_structures(1, 1)) == 4  # {test,treat} x {{},{0}}


class TestPatterns:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_weight_patterns_valid(self, k):
        pats = weight_patterns(k)
        assert pats, "at least one weight pattern per k"
        seen = set()
        for name, weights in pats:
            assert len(weights) == k
            assert all(w >= 0 and w == int(w) for w in weights), name
            assert sum(weights) > 0, name
            assert weights not in seen
            seen.add(weights)

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_cost_patterns_valid(self, n):
        pats = cost_patterns(n)
        assert pats
        seen = set()
        for name, costs in pats:
            assert len(costs) == n
            assert all(c >= 0 and c == int(c) for c in costs), name
            assert costs not in seen
            seen.add(costs)

    def test_zero_weight_pattern_dropped_at_k1(self):
        # w-zero0 at k=1 would have total weight 0: must not be offered.
        names = [name for name, _ in weight_patterns(1)]
        assert "w-zero0" not in names


class TestInstanceStream:
    def test_count_matches_stream(self):
        tiny = Bounds(name="tiny", max_k=2, max_actions=2, bvm_stride=7)
        instances = list(enumerate_instances(tiny))
        assert len(instances) == count_instances(tiny)
        # Deterministic: same order on re-enumeration.
        again = list(enumerate_instances(tiny))
        assert [p.to_json() for p in instances] == [p.to_json() for p in again]

    def test_instances_are_valid_problems(self):
        tiny = Bounds(name="tiny", max_k=2, max_actions=2, bvm_stride=7)
        for p in enumerate_instances(tiny):
            assert 1 <= p.k <= 2
            assert 1 <= p.n_actions <= 2
            assert sum(p.weights) > 0
            assert "/" in p.name  # provenance-encoding name

    def test_presets(self):
        assert QUICK.max_k == 3 and QUICK.max_actions == 4
        assert FULL.max_k == 4 and FULL.max_actions == 5
        assert count_instances(QUICK) > 10_000
