"""Shrunken reproducers for every bug fixed in the verification sweep.

Each test pins one concrete defect found while building the bounded-
model harness, in the shape the harness itself emits: a minimal instance
plus the check that caught it.  If any of these regress, the full sweep
would catch them too — these exist so the failure is *instant* and the
culprit obvious.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.heuristics import HEURISTICS
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp_reference
from repro.ttpar.extract import rederive_policy, tree_from_tables
from repro.verify import run_check


class TestRederivePolicyFloatOrder:
    """`rederive_policy` summed candidates as ``(c·p + C(rest)) + C(inter)``
    instead of the contract's ``((c·p) + C(inter)) + C(rest)``.  Float
    addition is not associative, so near-tied candidates flipped argmins
    against every DP backend.  Found by randomized differential search;
    instance below is the minimal reproducer (0.7 + 0.2 associates to
    0.8999999999999999 one way and 0.9 the other)."""

    REPRO = json.dumps(
        {
            "k": 2,
            "weights": [1.0, 1.0],
            "actions": [
                {"kind": "treatment", "subset": 1, "cost": 0.2},
                {"kind": "test", "subset": 1, "cost": 0.1},
                {"kind": "treatment", "subset": 3, "cost": 0.5},
                {"kind": "treatment", "subset": 1, "cost": 0.3333333333333333},
            ],
        }
    )

    def test_pinned(self):
        problem = TTProblem.from_json(self.REPRO)
        ref = solve_dp_reference(problem)
        pol = rederive_policy(problem, ref.cost)
        assert np.array_equal(pol, ref.best_action)
        # The old bug picked action 1 on subset 0b11; the DP picks 0.
        assert pol[problem.universe] == ref.best_action[problem.universe] == 0

    def test_via_harness_check(self):
        assert run_check("property:rederive-policy", TTProblem.from_json(self.REPRO)) is None


class TestInfeasibleSubsetPolicy:
    """`rederive_policy` must emit -1 for every infinite-cost subset and
    `tree_from_tables` must refuse an infeasible universe instead of
    walking an undefined argmin."""

    PROBLEM = TTProblem.build(
        [1.0, 1.0],
        [Action.test(0b01, 1.0), Action.treatment(0b01, 1.0)],
        name="object-1-untreatable",
    )

    def test_infinite_subsets_get_minus_one(self):
        ref = solve_dp_reference(self.PROBLEM)
        pol = rederive_policy(self.PROBLEM, ref.cost)
        infeasible = ~np.isfinite(ref.cost)
        assert infeasible.any()
        assert (pol[infeasible] == -1).all()

    def test_tree_from_tables_raises(self):
        ref = solve_dp_reference(self.PROBLEM)
        with pytest.raises(ValueError, match="no successful procedure"):
            tree_from_tables(self.PROBLEM, ref.cost, ref.best_action)
        with pytest.raises(ValueError, match="no successful procedure"):
            tree_from_tables(self.PROBLEM, ref.cost, None)


class TestZeroWeightObjects:
    """Zero-weight objects (ruled out a priori, e.g. by conditioning)
    were rejected by `TTProblem` outright, and once admitted crashed the
    information-gain heuristic with a 0/0 and made every scorer decline
    on zero-weight live sets."""

    PROBLEM = TTProblem.build(
        [0.0, 1.0],
        [
            Action.test(0b01, 1.0),
            Action.treatment(0b01, 1.0),
            Action.treatment(0b10, 1.0),
        ],
        name="zero-weight-object-0",
    )

    def test_construction_admitted(self):
        assert self.PROBLEM.weights[0] == 0.0

    def test_all_zero_weights_still_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            TTProblem.build([0.0, 0.0], [Action.treatment(0b11, 1.0)])

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_heuristics_terminate(self, name):
        ref = solve_dp_reference(self.PROBLEM)
        tree = HEURISTICS[name](self.PROBLEM)
        assert tree.expected_cost() >= ref.optimal_cost - 1e-9

    def test_via_harness_checks(self):
        for check in ("property:canonicalize", "property:rederive-policy"):
            assert run_check(check, self.PROBLEM) is None


class TestCLIDegenerateInstances:
    """`repro solve --json` emitted bare ``Infinity`` (invalid JSON) for
    infeasible instances, and `--tree` dumped a raw traceback."""

    INFEASIBLE = json.dumps(
        {
            "k": 2,
            "weights": [1.0, 1.0],
            "actions": [{"kind": "treatment", "subset": 1, "cost": 1.0}],
        }
    )

    @pytest.fixture()
    def infeasible_file(self, tmp_path):
        path = tmp_path / "infeasible.json"
        path.write_text(self.INFEASIBLE)
        return str(path)

    def test_json_output_is_valid_json(self, infeasible_file, capsys):
        rc = main(["solve", "--file", infeasible_file, "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)  # would raise on Infinity
        assert data["optimal_cost"] is None
        assert data["feasible"] is False

    def test_tree_fails_cleanly(self, infeasible_file, capsys):
        rc = main(["solve", "--file", infeasible_file, "--tree"])
        assert rc == 2
        assert "no successful procedure" in capsys.readouterr().err

    def test_solve_batch_degenerates(self, tmp_path, capsys):
        lines = [
            # k=1 single object, single treatment
            json.dumps(
                {
                    "k": 1,
                    "weights": [1.0],
                    "actions": [{"kind": "treatment", "subset": 1, "cost": 2.0}],
                }
            ),
            # single non-splitting test only: infeasible
            json.dumps(
                {
                    "k": 1,
                    "weights": [1.0],
                    "actions": [{"kind": "test", "subset": 1, "cost": 1.0}],
                }
            ),
            # zero-weight object present
            json.dumps(
                {
                    "k": 2,
                    "weights": [0.0, 2.0],
                    "actions": [{"kind": "treatment", "subset": 3, "cost": 1.0}],
                }
            ),
        ]
        infile = tmp_path / "batch.jsonl"
        infile.write_text("\n".join(lines) + "\n")
        rc = main(["solve-batch", "--in", str(infile)])
        assert rc == 0
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [row["feasible"] for row in out] == [True, False, True]
        assert out[0]["optimal_cost"] == 2.0
        assert out[1]["optimal_cost"] is None
        assert out[2]["optimal_cost"] == 2.0

    def test_solve_batch_empty_stream(self, tmp_path, capsys):
        infile = tmp_path / "empty.jsonl"
        infile.write_text("")
        assert main(["solve-batch", "--in", str(infile)]) == 0
        assert capsys.readouterr().out == ""
