"""Shrinker behavior: minimal reproducers, deterministically.

The shrinker is tested against *synthetic* failure predicates whose
minimal failing instances are known by construction, so the tests pin
both that shrinking reaches a 1-step-minimal instance and that the
result is stable run to run.  Emitted reproducer files must be valid
Python whose test function actually executes.
"""

import subprocess
import sys

from repro.core.generators import random_instance
from repro.core.problem import Action, TTProblem
from repro.verify import emit_regression_test, shrink


def has_big_test(problem: TTProblem):
    """Synthetic bug: fires whenever any test touches object 0 and the
    instance has at least two actions."""
    if problem.n_actions < 2:
        return None
    for a in problem.actions:
        if a.is_test and (a.subset & 1):
            return "planted failure"
    return None


class TestShrink:
    def test_reaches_known_minimum(self):
        big = random_instance(4, n_tests=4, n_treatments=3, seed=2)
        assert has_big_test(big), "planted predicate must fire on the seed"
        small = shrink(big, has_big_test)
        # Minimal under the predicate: exactly 2 actions, 1 object,
        # some test containing object 0, everything flattened to 0/1.
        assert small.n_actions == 2
        assert small.k == 1
        assert any(a.is_test and (a.subset & 1) for a in small.actions)
        # The predicate ignores values, so monotone flattening bottoms out.
        assert all(a.cost == 0.0 for a in small.actions)
        assert all(w == 1.0 for w in small.weights)
        # 1-step minimality: no single candidate reduction still fails.
        assert has_big_test(small)

    def test_deterministic(self):
        big = random_instance(4, n_tests=4, n_treatments=3, seed=9)
        a = shrink(big, has_big_test)
        b = shrink(big, has_big_test)
        assert a.to_json() == b.to_json()

    def test_invalid_reductions_skipped(self):
        # Object 1 carries all the weight; dropping it would make the
        # problem invalid (total weight 0), so the shrinker must route
        # around that reduction rather than crash.
        problem = TTProblem.build(
            [0.0, 3.0],
            [Action.test(0b01, 2.0), Action.treatment(0b11, 2.0)],
        )

        def fails(p: TTProblem):
            return "yes" if p.k == 2 and p.n_actions == 2 else None

        small = shrink(problem, fails)
        assert small.k == 2 and small.n_actions == 2
        assert sum(small.weights) > 0

    def test_predicate_crash_treated_as_not_reproducing(self):
        problem = random_instance(3, n_tests=2, n_treatments=2, seed=1)

        def fragile(p: TTProblem):
            if p.n_actions < 4:
                raise RuntimeError("boom")
            return "fails only at full size"

        small = shrink(problem, fragile)
        assert small.n_actions == 4  # crashes never count as reproductions


class TestEmit:
    def test_emitted_reproducer_runs(self, tmp_path):
        problem = TTProblem.build(
            [1.0, 1.0],
            [Action.test(0b01, 1.0), Action.treatment(0b11, 1.0)],
        )
        fname, body = emit_regression_test(
            "property:bellman", problem, "detail text"
        )
        assert fname.endswith(".py") and fname.startswith("test_")
        path = tmp_path / fname
        path.write_text(body)
        # The check passes on this instance, so the emitted test passes:
        # exactly the state a reproducer reaches once its bug is fixed.
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_emitted_reproducer_fails_while_bug_reproduces(self, tmp_path):
        # An instance the numpy backend genuinely disagrees on does not
        # exist (we hope) — so simulate with an unknown-check wrapper:
        # the emitted file must assert on run_check's failure detail.
        problem = TTProblem.build([1.0], [Action.treatment(0b1, 1.0)])
        _, body = emit_regression_test("property:bellman", problem, "d")
        assert 'run_check' in body and "assert failure is None" in body
        assert problem.to_json() in body
