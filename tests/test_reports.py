"""The one-shot reproduction report generator."""

import pytest

from repro.cli import main
from repro.reports import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report()


class TestReportContent:
    def test_all_sections_present(self, report_text):
        for heading in (
            "Solver agreement",
            "Speedup vs P/log P",
            "CCC slowdown",
            "Wiring",
            "Machine sizing",
            "ASCEND/DESCEND class",
            "Heuristic gap",
            "Bit-level footprint",
        ):
            assert heading in report_text

    def test_no_failures_reported(self, report_text):
        assert "NO" not in report_text
        assert "FAIL" not in report_text

    def test_solver_agreement_all_yes(self, report_text):
        section = report_text.split("## Speedup")[0]
        assert section.count("| yes |") == 4

    def test_markdown_tables_wellformed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_paper_headline_in_speedup_table(self, report_text):
        # k=15 row carries the 'roughly 10^6' speedup figure
        assert "2,386,020" in report_text


class TestReportCLI:
    def test_stdout(self):
        import io

        out = io.StringIO()
        assert main(["report"], out=out) == 0
        assert "## Reproduction report" in out.getvalue()

    def test_file_output(self, tmp_path):
        import io

        path = tmp_path / "report.md"
        out = io.StringIO()
        assert main(["report", "--out", str(path)], out=out) == 0
        assert "## Machine sizing" in path.read_text()
        assert str(path) in out.getvalue()
