"""Every example script must run clean — they are part of the API contract."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "medical_diagnosis",
        "fault_location",
        "bvm_patterns",
        "speedup_study",
        "taxonomy_keys",
        "preprocessing_and_variants",
        "sorting_and_routing",
    } <= names
