"""The unified `solve()` dispatch: backend selection, memoization, parity."""

import numpy as np
import pytest

from repro.core import (
    BACKENDS,
    PARALLEL_MIN_K,
    cached_subset_weights,
    resolve_backend,
    solve,
    solve_dp,
    solve_dp_reference,
    subset_weights,
)
from repro.core.generators import random_instance
from repro.core.problem import Action, TTProblem


def _big_problem(k=PARALLEL_MIN_K):
    """A k >= PARALLEL_MIN_K spec (cheap to *build*; never solved here)."""
    return TTProblem.build([1.0] * k, [Action.treatment(set(range(k)), 1.0)])


class TestResolveBackend:
    def test_small_auto_stays_numpy(self):
        problem = random_instance(5, 3, 2, seed=1)
        assert resolve_backend(problem, "auto", workers=8) == ("numpy", 1)

    def test_big_auto_goes_parallel_with_workers(self):
        assert resolve_backend(_big_problem(), "auto", workers=4) == ("parallel", 4)

    def test_big_auto_single_worker_stays_numpy(self):
        assert resolve_backend(_big_problem(), "auto", workers=1) == ("numpy", 1)

    def test_explicit_backends_pass_through(self):
        problem = random_instance(4, 3, 2, seed=2)
        assert resolve_backend(problem, "numpy")[0] == "numpy"
        assert resolve_backend(problem, "reference")[0] == "reference"
        assert resolve_backend(problem, "parallel", workers=3) == ("parallel", 3)

    def test_unknown_backend_rejected(self):
        problem = random_instance(3, 2, 2, seed=3)
        with pytest.raises(ValueError):
            resolve_backend(problem, "cuda")

    def test_backend_names_exported(self):
        assert set(BACKENDS) == {"auto", "numpy", "parallel", "native", "reference"}


class TestSolveParity:
    @pytest.mark.parametrize("backend", ["numpy", "parallel", "reference"])
    def test_all_backends_bit_for_bit(self, backend):
        problem = random_instance(6, 5, 3, seed=4)
        ref = solve_dp_reference(problem)
        result = solve(problem, backend=backend, workers=2)
        assert np.array_equal(result.cost, ref.cost)
        assert np.array_equal(result.best_action, ref.best_action)

    def test_auto_matches_explicit(self):
        problem = random_instance(5, 4, 3, seed=5)
        assert solve(problem).optimal_cost == solve_dp(problem).optimal_cost

    def test_tree_roundtrip_through_dispatch(self):
        problem = random_instance(5, 4, 3, seed=6)
        result = solve(problem, backend="parallel", workers=2)
        tree = result.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(result.optimal_cost)


class TestMemoization:
    def test_same_problem_shares_vector(self):
        problem = random_instance(6, 4, 3, seed=7)
        a = cached_subset_weights(problem)
        b = cached_subset_weights(problem)
        assert a is b

    def test_structurally_equal_problems_share(self):
        p1 = random_instance(4, 3, 2, seed=8)
        p2 = TTProblem.build(p1.weights, p1.actions, name=p1.name)
        assert cached_subset_weights(p1) is cached_subset_weights(p2)

    def test_cached_vector_is_frozen(self):
        problem = random_instance(4, 3, 2, seed=9)
        p = cached_subset_weights(problem)
        with pytest.raises(ValueError):
            p[0] = 1.0

    def test_cached_matches_fresh(self):
        problem = random_instance(6, 4, 3, seed=10)
        assert np.array_equal(cached_subset_weights(problem), subset_weights(problem))


class TestWeightsCacheBudget:
    """The cache must never pin more than its byte budget."""

    def test_budget_bounds_resident_bytes(self, monkeypatch):
        from repro.core.dispatch import (
            WEIGHTS_CACHE_ENV,
            _clear_weights_cache,
            weights_cache_nbytes,
        )

        _clear_weights_cache()
        k = 8
        one_vector = (1 << k) * 8  # float64 per subset
        monkeypatch.setenv(WEIGHTS_CACHE_ENV, str(3 * one_vector))
        try:
            for seed in range(10):
                cached_subset_weights(random_instance(k, 3, 2, seed=seed))
                assert weights_cache_nbytes() <= 3 * one_vector
            # evicted oldest-first: the newest entries are the survivors
            newest = random_instance(k, 3, 2, seed=9)
            assert cached_subset_weights(newest) is cached_subset_weights(newest)
        finally:
            _clear_weights_cache()

    def test_oversized_vector_not_cached(self, monkeypatch):
        from repro.core.dispatch import (
            WEIGHTS_CACHE_ENV,
            _clear_weights_cache,
            weights_cache_nbytes,
        )

        _clear_weights_cache()
        monkeypatch.setenv(WEIGHTS_CACHE_ENV, "64")  # smaller than any k>=4 vector
        try:
            problem = random_instance(5, 3, 2, seed=0)
            p = cached_subset_weights(problem)
            assert np.array_equal(p, subset_weights(problem))
            assert weights_cache_nbytes() == 0
        finally:
            _clear_weights_cache()

    def test_invalid_budget_rejected(self, monkeypatch):
        from repro.core.dispatch import WEIGHTS_CACHE_ENV
        from repro.core.errors import InvalidProblem

        monkeypatch.setenv(WEIGHTS_CACHE_ENV, "not-a-number")
        with pytest.raises(InvalidProblem):
            cached_subset_weights(random_instance(4, 3, 2, seed=0))

    def test_lru_refresh_on_hit(self, monkeypatch):
        from repro.core.dispatch import (
            WEIGHTS_CACHE_ENV,
            _clear_weights_cache,
        )

        _clear_weights_cache()
        k = 6
        one_vector = (1 << k) * 8
        monkeypatch.setenv(WEIGHTS_CACHE_ENV, str(2 * one_vector))
        try:
            a = random_instance(k, 3, 2, seed=0)
            b = random_instance(k, 3, 2, seed=1)
            c = random_instance(k, 3, 2, seed=2)
            va = cached_subset_weights(a)
            cached_subset_weights(b)
            assert cached_subset_weights(a) is va  # refreshes a
            cached_subset_weights(c)  # evicts b, not a
            assert cached_subset_weights(a) is va
        finally:
            _clear_weights_cache()
