"""Greedy baselines: validity, optimality gap direction, determinism."""

import pytest
from hypothesis import given, settings

from repro.core.generators import WORKLOADS
from repro.core.heuristics import (
    HEURISTICS,
    cost_per_resolution,
    greedy_tree,
    information_gain,
    treatment_only,
)
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from tests.conftest import tt_problems


class TestValidity:
    @settings(max_examples=30)
    @given(tt_problems(max_k=5))
    def test_all_heuristics_build_successful_procedures(self, problem):
        for name, h in HEURISTICS.items():
            tree = h(problem)
            tree.validate()

    def test_inadequate_rejected(self):
        p = TTProblem.build([1.0, 1.0], [Action.treatment({0}, 1.0)])
        for h in HEURISTICS.values():
            with pytest.raises(ValueError):
                h(p)


class TestOptimalityGap:
    @settings(max_examples=40)
    @given(tt_problems(max_k=5))
    def test_dp_lower_bounds_every_heuristic(self, problem):
        """The central NP-hard-problem property: the DP optimum is a lower
        bound on every heuristic procedure's cost."""
        opt = solve_dp(problem).optimal_cost
        for name, h in HEURISTICS.items():
            assert h(problem).expected_cost() >= opt - 1e-9, name

    def test_tests_help_on_structured_instances(self):
        """On the fault-location workload, strategies that may test should
        beat blind treatment (that is the paper's motivation for tests)."""
        problem = WORKLOADS["fault"](6, seed=0)
        blind = treatment_only(problem).expected_cost()
        smart = min(
            cost_per_resolution(problem).expected_cost(),
            information_gain(problem).expected_cost(),
        )
        assert smart <= blind


class TestTreatmentOnly:
    @settings(max_examples=25)
    @given(tt_problems(max_k=4))
    def test_never_uses_tests(self, problem):
        tree = treatment_only(problem)
        for i in tree.actions_used():
            assert problem.actions[i].is_treatment

    def test_straight_line_shape(self):
        problem = WORKLOADS["medical"](5, seed=2)
        tree = treatment_only(problem)
        # A treatment-only procedure is a path: nodes == depth.
        assert tree.node_count() == tree.depth()


class TestDeterminism:
    def test_same_input_same_tree(self):
        problem = WORKLOADS["lab"](5, seed=4)
        a = cost_per_resolution(problem)
        b = cost_per_resolution(problem)
        assert a.render() == b.render()


class TestCustomScorer:
    def test_greedy_tree_with_custom_scorer(self, tiny_problem):
        # Always prefer the lowest-index applicable action.
        def first_applicable(problem, live, i, p_live, p_inter, p_rest):
            return float(i)

        tree = greedy_tree(tiny_problem, first_applicable)
        tree.validate()
        assert tree.root.action_index == 0  # swab splits {0,1,2}
