"""Tree analysis and export utilities."""

import pytest
from hypothesis import given, settings

from repro.core.heuristics import cost_per_resolution
from repro.core.sequential import solve_dp
from repro.core.treeops import (
    action_usage,
    expected_action_count,
    per_object_outcomes,
    to_dot,
    trees_equal,
    worst_case_cost,
)
from tests.conftest import tt_problems


@pytest.fixture
def tree(tiny_problem):
    return solve_dp(tiny_problem).tree()


class TestPerObjectOutcomes:
    def test_all_objects_covered(self, tiny_problem, tree):
        outcomes = per_object_outcomes(tree)
        assert [o.obj for o in outcomes] == list(range(tiny_problem.k))

    def test_treated_by_is_a_treatment(self, tiny_problem, tree):
        for o in per_object_outcomes(tree):
            act = tiny_problem.actions[o.treated_by]
            assert act.is_treatment
            assert (act.subset >> o.obj) & 1

    def test_costs_sum_to_expected_cost(self, tiny_problem, tree):
        outcomes = per_object_outcomes(tree)
        total = sum(o.weight * o.cost for o in outcomes)
        assert total == pytest.approx(tree.expected_cost())

    @settings(max_examples=25)
    @given(tt_problems(max_k=4))
    def test_property_weighted_sum(self, problem):
        tree = cost_per_resolution(problem)
        outcomes = per_object_outcomes(tree)
        total = sum(o.weight * o.cost for o in outcomes)
        assert total == pytest.approx(tree.expected_cost())


class TestAggregates:
    def test_expected_action_count_bounds(self, tree):
        eac = expected_action_count(tree)
        outcomes = per_object_outcomes(tree)
        assert min(o.n_actions for o in outcomes) <= eac
        assert eac <= max(o.n_actions for o in outcomes)

    def test_worst_case(self, tree):
        obj, cost = worst_case_cost(tree)
        outcomes = {o.obj: o.cost for o in per_object_outcomes(tree)}
        assert cost == max(outcomes.values())
        assert outcomes[obj] == cost

    def test_action_usage_probabilities(self, tiny_problem, tree):
        usage = action_usage(tree)
        # The root action executes with probability 1.
        assert usage[tree.root.action_index] == pytest.approx(1.0)
        assert all(0 < v <= 1.0 + 1e-12 for v in usage.values())

    @settings(max_examples=25)
    @given(tt_problems(max_k=4))
    def test_usage_matches_simulation(self, problem):
        """Action usage from tree weights == frequency over simulations."""
        tree = cost_per_resolution(problem)
        usage = action_usage(tree)
        total_w = sum(problem.weights)
        sim: dict[int, float] = {}
        for j in range(problem.k):
            seen = set()
            for step in tree.simulate(j):
                # count each action once per path (it can appear on
                # several nodes, but never twice on one path)
                assert step.action_index not in seen or True
                sim[step.action_index] = (
                    sim.get(step.action_index, 0.0) + problem.weights[j] / total_w
                )
        for idx, prob_used in usage.items():
            assert prob_used == pytest.approx(sim[idx])


class TestTreesEqual:
    def test_reflexive(self, tree):
        assert trees_equal(tree, tree)

    def test_deterministic_solvers_agree(self, tiny_problem):
        a = solve_dp(tiny_problem).tree()
        b = solve_dp(tiny_problem).tree()
        assert trees_equal(a, b)

    def test_different_trees_differ(self, tiny_problem):
        opt = solve_dp(tiny_problem).tree()
        greedy = cost_per_resolution(tiny_problem)
        # They may coincide on this instance; perturb: compare with None.
        from repro.core.tree import TTTree

        assert not trees_equal(opt, TTTree(tiny_problem, None))


class TestDotExport:
    def test_contains_nodes_and_edges(self, tree):
        dot = to_dot(tree)
        assert dot.startswith("digraph")
        assert "->" in dot
        assert "swab" in dot
        assert "doublecircle" in dot  # treated terminals
        assert dot.rstrip().endswith("}")

    def test_test_nodes_are_boxes(self, tree):
        dot = to_dot(tree)
        assert "shape=box" in dot
        assert "shape=ellipse" in dot

    @settings(max_examples=15)
    @given(tt_problems(max_k=4))
    def test_balanced_braces(self, problem):
        dot = to_dot(cost_per_resolution(problem))
        assert dot.count("{") == dot.count("}")
