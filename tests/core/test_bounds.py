"""Certified lower bounds and action criticality."""

import math

import pytest
from hypothesis import given, settings

from repro.core.binary_testing import complete_test_instance, to_tt_problem
from repro.core.bounds import (
    action_criticality,
    entropy_actions_floor,
    lower_bound,
    treatment_floor,
)
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from tests.conftest import tt_problems


class TestTreatmentFloor:
    @settings(max_examples=40, deadline=None)
    @given(tt_problems(max_k=5))
    def test_never_exceeds_optimum(self, problem):
        assert treatment_floor(problem) <= solve_dp(problem).optimal_cost + 1e-9

    def test_tight_when_single_covering_treatment(self):
        p = TTProblem.build([2.0, 3.0], [Action.treatment({0, 1}, 5.0)])
        # Optimal = apply it once: 5 * 5 = 25; floor = 5*2 + 5*3 = 25.
        assert treatment_floor(p) == pytest.approx(25.0)
        assert solve_dp(p).optimal_cost == pytest.approx(25.0)

    def test_untreatable_object_gives_inf(self):
        p = TTProblem.build(
            [1.0, 1.0], [Action.test({0}, 1.0), Action.treatment({0}, 2.0)]
        )
        assert math.isinf(treatment_floor(p))


class TestEntropyFloor:
    def test_none_with_group_treatments(self, tiny_problem):
        # drugB covers {1, 2}: the entropy argument does not apply.
        assert entropy_actions_floor(tiny_problem) is None

    def test_applies_with_singleton_treatments(self):
        btp = complete_test_instance([1.0, 1.0, 1.0, 1.0])
        tt = to_tt_problem(btp, treatment_cost=1.0)
        floor = entropy_actions_floor(tt)
        assert floor is not None
        # uniform over 4: H = 2 bits, weight 4, c_min = 1 -> floor 8.
        assert floor == pytest.approx(8.0)

    def test_bounded_by_optimum(self):
        btp = complete_test_instance([5.0, 3.0, 2.0, 1.0])
        tt = to_tt_problem(btp, treatment_cost=1.0)
        floor = entropy_actions_floor(tt)
        assert floor is not None
        assert floor <= solve_dp(tt).optimal_cost + 1e-9


class TestLowerBound:
    @settings(max_examples=40, deadline=None)
    @given(tt_problems(max_k=5))
    def test_sound(self, problem):
        assert lower_bound(problem) <= solve_dp(problem).optimal_cost + 1e-9

    def test_takes_the_max(self):
        btp = complete_test_instance([1.0, 1.0, 1.0, 1.0])
        tt = to_tt_problem(btp, treatment_cost=0.25)
        lb = lower_bound(tt)
        assert lb >= treatment_floor(tt)
        ent = entropy_actions_floor(tt)
        assert ent is not None and lb >= ent


class TestActionCriticality:
    @settings(max_examples=15, deadline=None)
    @given(tt_problems(max_k=4, max_actions=4))
    def test_regret_nonnegative(self, problem):
        for crit in action_criticality(problem):
            assert crit.regret >= -1e-9

    def test_sole_covering_treatment_essential(self):
        p = TTProblem.build(
            [1.0, 2.0],
            [Action.test({0}, 1.0), Action.treatment({0, 1}, 3.0)],
        )
        crits = {c.action_index: c for c in action_criticality(p)}
        assert crits[1].is_essential
        assert not crits[0].is_essential

    def test_redundant_action_has_zero_regret(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.treatment({0, 1}, 2.0, "good"),
                Action.treatment({0, 1}, 9.0, "junk"),
            ],
        )
        crits = {c.action_index: c for c in action_criticality(p)}
        assert crits[1].regret == pytest.approx(0.0)
        assert crits[0].regret > 0  # falling back to the junk price

    def test_single_action_problem(self):
        p = TTProblem.build([1.0], [Action.treatment({0}, 1.0)])
        crits = action_criticality(p)
        assert crits[0].is_essential
