"""DP solver correctness: reference equivalence, brute-force oracle,
structural properties of the cost table, and tree extraction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bruteforce import best_tree_exhaustive, min_cost_exhaustive
from repro.core.generators import WORKLOADS, random_instance
from repro.core.problem import Action, TTProblem
from repro.core.sequential import (
    layer_sizes,
    optimal_cost,
    solve_dp,
    solve_dp_reference,
    subset_weights,
)
from tests.conftest import tt_problems


class TestSubsetWeights:
    def test_tiny(self, tiny_problem):
        p = subset_weights(tiny_problem)
        assert p[0] == 0.0
        assert p[0b111] == 6.0
        assert p[0b101] == 5.0

    @given(tt_problems(max_k=5))
    def test_monotone_and_additive(self, problem):
        p = subset_weights(problem)
        full = problem.universe
        # additivity: p(S) + p(U-S) = p(U)
        for s in range(0, full + 1, max(1, full // 7)):
            assert p[s] + p[full & ~s] == pytest.approx(p[full])

    @settings(max_examples=40)
    @given(tt_problems(max_k=5))
    def test_matches_weight_of_bitwise(self, problem):
        """The in-place butterfly accumulation must agree with the scalar
        `weight_of` *exactly* (same float addition order), not just
        approximately — the bit-for-bit backend contract depends on it."""
        p = subset_weights(problem)
        for s in range(problem.universe + 1):
            assert p[s] == problem.weight_of(s)

    def test_single_object(self):
        problem = TTProblem.build([2.5], [Action.treatment({0}, 1.0)])
        assert subset_weights(problem).tolist() == [0.0, 2.5]


class TestAgainstReference:
    @settings(max_examples=60)
    @given(tt_problems(max_k=5))
    def test_vectorized_equals_reference(self, problem):
        a = solve_dp(problem)
        b = solve_dp_reference(problem)
        assert np.allclose(a.cost, b.cost, equal_nan=False)
        assert (a.best_action == b.best_action).all()

    @settings(max_examples=60)
    @given(tt_problems(max_k=5))
    def test_vectorized_equals_reference_bit_for_bit(self, problem):
        """Strict equality, not allclose: both backends evaluate
        ((c*p) + C(inter)) + C(rest) in the same association, so even the
        last mantissa bit must agree (locked by the determinism
        contract; see the sequential module docstring)."""
        a = solve_dp(problem)
        b = solve_dp_reference(problem)
        assert np.array_equal(a.cost, b.cost)
        assert np.array_equal(a.best_action, b.best_action)

    def test_op_counts_agree(self, tiny_problem):
        a = solve_dp(tiny_problem)
        b = solve_dp_reference(tiny_problem)
        assert a.op_count == b.op_count == 7 * 3

    @settings(max_examples=30)
    @given(tt_problems(max_k=4))
    def test_op_count_counts_rejected_candidates_too(self, problem):
        """op_count is the paper's sequential work measure: every M[S,i]
        candidate, including sentinel-rejected ones = (2^k - 1) * N."""
        expected = ((1 << problem.k) - 1) * problem.n_actions
        assert solve_dp(problem).op_count == expected
        assert solve_dp_reference(problem).op_count == expected


class TestTieBreak:
    def test_duplicate_actions_pick_lowest_index(self):
        dup = Action.test({0, 1}, 1.0)
        cover = Action.treatment({0, 1, 2}, 2.0)
        problem = TTProblem.build([1.0, 1.0, 1.0], [dup, dup, cover, cover])
        for result in (solve_dp(problem), solve_dp_reference(problem)):
            # every chosen test is index 0, never its clone at index 1;
            # every chosen treatment is index 2, never index 3
            chosen = set(int(i) for i in result.best_action if i >= 0)
            assert 1 not in chosen
            assert 3 not in chosen

    @settings(max_examples=30)
    @given(tt_problems(max_k=4))
    def test_randomized_duplication_never_flips_argmin(self, problem):
        """Appending exact duplicates of every action must leave
        best_action untouched — lowest index wins all the new ties."""
        doubled = problem.with_actions(list(problem.actions) * 2)
        base = solve_dp(problem)
        dup = solve_dp(doubled)
        assert np.array_equal(dup.best_action, base.best_action)
        assert np.array_equal(dup.cost, base.cost)
        assert np.array_equal(
            solve_dp_reference(doubled).best_action, base.best_action
        )


class TestAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(tt_problems(max_k=3, max_actions=3))
    def test_dp_equals_unmemoized_recursion(self, problem):
        assert solve_dp(problem).optimal_cost == pytest.approx(
            min_cost_exhaustive(problem)
        )

    @settings(max_examples=10, deadline=None)
    @given(tt_problems(min_k=2, max_k=3, max_actions=2))
    def test_dp_equals_full_tree_enumeration(self, problem):
        """DP optimum == min over *all* explicitly enumerated procedures,
        evaluated with the paper's path-sum cost definition."""
        best = best_tree_exhaustive(problem, limit=500_000)
        assert solve_dp(problem).optimal_cost == pytest.approx(
            best.expected_cost_by_paths()
        )


class TestCostTableProperties:
    @settings(max_examples=40)
    @given(tt_problems(max_k=5))
    def test_empty_set_costs_zero(self, problem):
        assert solve_dp(problem).cost[0] == 0.0

    @settings(max_examples=40)
    @given(tt_problems(max_k=5))
    def test_monotone_under_inclusion(self, problem):
        """C(S') <= C(S) for S' ⊆ S: a procedure for S also handles S'
        at no greater charge (weights are positive)."""
        cost = solve_dp(problem).cost
        full = problem.universe
        for s in range(full + 1):
            # drop one element at a time
            m = s
            while m:
                low = m & -m
                assert cost[s & ~low] <= cost[s] + 1e-9
                m ^= low

    @settings(max_examples=40)
    @given(tt_problems(max_k=5))
    def test_adequate_implies_finite(self, problem):
        assert math.isfinite(solve_dp(problem).optimal_cost)

    def test_inadequate_subset_infinite(self):
        # Object 1 has no treatment: C of any set containing it is INF.
        p = TTProblem.build(
            [1.0, 1.0],
            [Action.test({0}, 1.0), Action.treatment({0}, 2.0)],
        )
        r = solve_dp(p)
        assert math.isinf(r.cost[0b10])
        assert math.isinf(r.cost[0b11])
        assert math.isfinite(r.cost[0b01])
        assert not r.feasible
        with pytest.raises(ValueError):
            r.tree()

    def test_scaling_weights_scales_cost(self):
        p1 = random_instance(4, 3, 3, seed=7)
        scaled = TTProblem.build([w * 3 for w in p1.weights], p1.actions)
        assert solve_dp(scaled).optimal_cost == pytest.approx(
            3 * solve_dp(p1).optimal_cost
        )

    def test_scaling_costs_scales_cost(self):
        p1 = random_instance(4, 3, 3, seed=8)
        scaled = p1.with_actions(
            [
                Action(a.kind, a.subset, a.cost * 2.5, a.name)
                for a in p1.actions
            ]
        )
        assert solve_dp(scaled).optimal_cost == pytest.approx(
            2.5 * solve_dp(p1).optimal_cost
        )

    def test_adding_action_never_hurts(self):
        p1 = random_instance(4, 2, 3, seed=9)
        richer = p1.with_actions(list(p1.actions) + [Action.test({0, 2}, 0.5)])
        assert solve_dp(richer).optimal_cost <= solve_dp(p1).optimal_cost + 1e-9


class TestTreeExtraction:
    @settings(max_examples=40)
    @given(tt_problems(max_k=5))
    def test_tree_cost_matches_table(self, problem):
        r = solve_dp(problem)
        tree = r.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(r.optimal_cost)

    def test_known_example(self, tiny_problem):
        r = solve_dp(tiny_problem)
        assert r.optimal_cost == pytest.approx(37.0)
        tree = r.tree()
        assert tree.actions_used() == {0, 1, 2}

    def test_workload_instances(self):
        for name, make in WORKLOADS.items():
            problem = make(6, seed=3)
            r = solve_dp(problem)
            assert r.feasible, name
            tree = r.tree()
            tree.validate()
            assert tree.expected_cost() == pytest.approx(r.optimal_cost)


class TestSmallUniverses:
    def test_single_object_treated(self):
        problem = TTProblem.build([3.0], [Action.treatment({0}, 2.0)])
        r = solve_dp(problem)
        assert r.optimal_cost == pytest.approx(6.0)
        assert r.best_action.tolist() == [-1, 0]
        tree = r.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(6.0)

    def test_single_object_choice_of_treatments(self):
        problem = TTProblem.build(
            [2.0],
            [Action.treatment({0}, 5.0), Action.treatment({0}, 1.0)],
        )
        r = solve_dp(problem)
        assert r.optimal_cost == pytest.approx(2.0)
        assert r.best_action[1] == 1  # strictly cheaper, not a tie

    def test_single_object_matches_reference(self):
        problem = TTProblem.build(
            [1.5], [Action.test({0}, 0.5), Action.treatment({0}, 2.0)]
        )
        a, b = solve_dp(problem), solve_dp_reference(problem)
        assert np.array_equal(a.cost, b.cost)
        assert np.array_equal(a.best_action, b.best_action)


class TestHelpers:
    def test_layer_sizes(self):
        assert layer_sizes(4) == [1, 4, 6, 4, 1]
        assert sum(layer_sizes(6)) == 64

    def test_optimal_cost_convenience(self, tiny_problem):
        assert optimal_cost(tiny_problem) == pytest.approx(37.0)
