"""Top-down memoized solver and the minimax variant."""

import pytest
from hypothesis import given, settings

from repro.core.generators import WORKLOADS, fault_location_instance
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from repro.core.topdown import solve_dp_topdown, solve_minimax
from tests.conftest import tt_problems


class TestTopDownExpected:
    @settings(max_examples=40, deadline=None)
    @given(tt_problems(max_k=5))
    def test_matches_bottom_up(self, problem):
        td = solve_dp_topdown(problem)
        assert td.optimal_cost == pytest.approx(solve_dp(problem).optimal_cost)

    @settings(max_examples=25, deadline=None)
    @given(tt_problems(max_k=5))
    def test_tree_roundtrip(self, problem):
        td = solve_dp_topdown(problem)
        tree = td.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(td.optimal_cost)

    def test_memo_values_match_dp_table(self):
        problem = WORKLOADS["medical"](5, seed=0)
        td = solve_dp_topdown(problem)
        dp = solve_dp(problem)
        for s, v in td.cost.items():
            assert v == pytest.approx(float(dp.cost[s]))

    def test_structured_instances_visit_few_subsets(self):
        """Prefix probes keep every live set an interval, so top-down
        memoization visits O(k^2) subsets instead of 2^k — the sequential
        advantage of structure that the per-subset parallel layout does
        not (need to) exploit."""
        from repro.util.bitops import mask_of

        k = 12
        tests = [
            Action.test(mask_of(range(0, i + 1)), 1.0) for i in range(k - 1)
        ]
        actions = tests + [Action.treatment((1 << k) - 1, 5.0)]
        problem = TTProblem.build([1.0] * k, actions)
        td = solve_dp_topdown(problem)
        assert td.feasible
        # intervals only: at most k(k+1)/2 + 1 subsets of the 4096.
        assert td.reachable_subsets <= k * (k + 1) // 2 + 1
        assert td.lattice_fraction < 0.02
        assert td.optimal_cost == pytest.approx(
            solve_dp(problem).optimal_cost
        )

    def test_unstructured_instances_reach_everything(self):
        """With per-module repairs any subset is reachable — full lattice."""
        problem = fault_location_instance(8, seed=0)
        td = solve_dp_topdown(problem)
        assert td.reachable_subsets == 1 << 8

    def test_inadequate_is_infeasible(self):
        p = TTProblem.build([1.0, 1.0], [Action.treatment({0}, 1.0)])
        td = solve_dp_topdown(p)
        assert not td.feasible
        with pytest.raises(ValueError):
            td.tree()


class TestMinimax:
    @settings(max_examples=30, deadline=None)
    @given(tt_problems(max_k=4))
    def test_tree_worst_case_equals_value(self, problem):
        mm = solve_minimax(problem)
        tree = mm.tree()
        tree.validate()
        worst = max(
            sum(s.cost for s in tree.simulate(j)) for j in range(problem.k)
        )
        assert worst == pytest.approx(mm.optimal_cost)

    @settings(max_examples=30, deadline=None)
    @given(tt_problems(max_k=4))
    def test_no_tree_beats_minimax_value(self, problem):
        """The expected-cost-optimal tree's worst path is >= the minimax
        optimum (minimax is the true floor over all trees)."""
        mm = solve_minimax(problem)
        exp_tree = solve_dp(problem).tree()
        worst_of_exp = max(
            sum(s.cost for s in exp_tree.simulate(j)) for j in range(problem.k)
        )
        assert worst_of_exp >= mm.optimal_cost - 1e-9

    def test_exhaustive_oracle_tiny(self):
        """Minimax DP == brute-force enumeration of all procedures."""
        from repro.core.bruteforce import enumerate_trees

        problem = TTProblem.build(
            [1.0, 1.0, 1.0],
            [
                Action.test({0}, 2.0),
                Action.test({1, 2}, 1.0),
                Action.treatment({0, 1}, 3.0),
                Action.treatment({2}, 2.0),
                Action.treatment({0, 1, 2}, 8.0),
            ],
        )
        best = min(
            max(
                sum(s.cost for s in tree.simulate(j)) for j in range(problem.k)
            )
            for tree in enumerate_trees(problem, limit=500_000)
        )
        assert solve_minimax(problem).optimal_cost == pytest.approx(best)

    def test_minimax_ignores_weights(self):
        base = WORKLOADS["lab"](4, seed=1)
        reweighted = TTProblem.build(
            [w * 7.0 for w in base.weights], base.actions
        )
        assert solve_minimax(base).optimal_cost == pytest.approx(
            solve_minimax(reweighted).optimal_cost
        )

    def test_criterion_label(self):
        p = WORKLOADS["random"](3, seed=0)
        assert solve_minimax(p).criterion == "minimax"
        assert solve_dp_topdown(p).criterion == "expected"

    def test_covering_treatment_base_case(self):
        p = TTProblem.build([1.0, 2.0], [Action.treatment({0, 1}, 5.0)])
        mm = solve_minimax(p)
        assert mm.optimal_cost == pytest.approx(5.0)
