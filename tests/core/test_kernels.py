"""The fused layer kernel, the layer-plan cache and the scratch arena.

The heart of this file is the differential suite: the legacy
``solve_layer_kernel`` is the oracle, and the fused kernel must match it
bit-for-bit — cost, argmin and op count — across random instances,
degenerate instances (infeasible, tie-heavy, tiny k) and every tiling.
"""

import numpy as np
import pytest

from repro.core.errors import InvalidProblem
from repro.core.generators import random_instance
from repro.core.kernels import (
    DEFAULT_TILE,
    TILE_ENV,
    LayerArena,
    LayerPlan,
    _clear_plan_cache,
    _env_tile,
    layer_plan,
    solve_layer_kernel_fused,
)
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp, solve_layer_kernel, subset_weights
from repro.util.bitops import popcount_array


def replay_legacy(problem, p):
    """Full DP replay with the legacy kernel: the differential oracle."""
    plan = layer_plan(problem.k)
    subsets = problem.subset_array
    costs = problem.cost_array
    is_test = problem.test_mask_array
    cost = np.full(1 << problem.k, np.inf)
    cost[0] = 0.0
    best = np.full(1 << problem.k, -1, dtype=np.int64)
    for j in range(1, problem.k + 1):
        layer = plan.layer(j)
        layer_best, layer_arg = solve_layer_kernel(
            layer, p[layer], cost, subsets, costs, is_test
        )
        cost[layer] = layer_best
        best[layer] = layer_arg
    return cost, best


def assert_layers_match(problem, p, tiles=(None, 0, 3)):
    """Per-layer bit-for-bit comparison across the given tilings."""
    plan = layer_plan(problem.k)
    subsets = problem.subset_array
    costs = problem.cost_array
    is_test = problem.test_mask_array
    cost = np.full(1 << problem.k, np.inf)
    cost[0] = 0.0
    arena = LayerArena()
    for j in range(1, problem.k + 1):
        layer = plan.layer(j)
        legacy_best, legacy_arg = solve_layer_kernel(
            layer, p[layer], cost, subsets, costs, is_test
        )
        for tile in tiles:
            fused_best, fused_arg = solve_layer_kernel_fused(
                layer, p[layer], cost, subsets, costs, is_test,
                arena=arena, tile=tile,
            )
            np.testing.assert_array_equal(legacy_best, fused_best)
            np.testing.assert_array_equal(legacy_arg, fused_arg)
        cost[layer] = legacy_best


class TestLayerPlan:
    def test_partition_is_exact(self):
        plan = layer_plan(6)
        seen = np.sort(plan.order)
        np.testing.assert_array_equal(seen, np.arange(64))
        for j in range(7):
            layer = plan.layer(j)
            pops = popcount_array(layer, 6)
            assert (pops == j).all()
            # stable argsort keeps masks ascending inside a layer
            assert (np.diff(layer) > 0).all() or layer.size <= 1

    def test_starts_bracket_binomials(self):
        import math

        plan = layer_plan(7)
        for j in range(8):
            lo, hi = plan.bounds(j)
            assert hi - lo == math.comb(7, j)

    def test_max_layer_size(self):
        import math

        plan = layer_plan(9)
        assert plan.max_layer_size == math.comb(9, 4)

    def test_cache_shares_one_plan(self):
        _clear_plan_cache()
        assert layer_plan(5) is layer_plan(5)

    def test_plan_arrays_frozen(self):
        plan = layer_plan(4)
        with pytest.raises(ValueError):
            plan.order[0] = 3
        with pytest.raises(ValueError):
            plan.starts[0] = 3

    def test_cache_bounded(self):
        from repro.core import kernels

        _clear_plan_cache()
        for k in range(kernels._PLAN_CACHE_MAX + 3):
            layer_plan(k)
        assert len(kernels._PLAN_CACHE) <= kernels._PLAN_CACHE_MAX
        _clear_plan_cache()

    def test_k_zero(self):
        plan = layer_plan(0)
        np.testing.assert_array_equal(plan.layer(0), [0])
        assert plan.max_layer_size == 1

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidProblem):
            LayerPlan(-1)


class TestLayerArena:
    def test_buffers_grow_and_are_reused(self):
        arena = LayerArena()
        best1, arg1 = arena.out(10)
        best2, arg2 = arena.out(4)
        assert best2.base is best1.base or best2.base is arena.best
        assert arena.nbytes > 0
        before = arena.nbytes
        arena.out(8)  # within capacity: no growth
        assert arena.nbytes == before
        arena.out(32)
        assert arena.nbytes > before

    def test_out_dtypes(self):
        arena = LayerArena()
        best, arg = arena.out(5)
        assert best.dtype == np.float64
        assert arg.dtype == np.int32

    def test_scratch_rows(self):
        arena = LayerArena()
        rows = arena.scratch(6)
        assert len(rows) == 7
        assert all(r.shape == (6,) for r in rows)

    def test_table_buffer(self):
        arena = LayerArena()
        t = arena.table(16)
        assert t.shape == (16,) and t.dtype == np.float64
        t2 = arena.table(8)
        assert t2.base is arena._table

    def test_nbytes_accounts_every_pool(self):
        arena = LayerArena()
        assert arena.nbytes == 0
        arena.out(4)
        arena.scratch(4)
        arena.table(4)
        assert arena.nbytes == 4 * (8 + 4) + 4 * (4 + 4 + 4 + 8 + 8 + 1 + 4) + 4 * 8


class TestFusedKernelDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_instances_bit_for_bit(self, seed):
        # Two instances per seed: 50 random instances in total, varying
        # k and the test/treatment mix.
        for k, n_tests, n_treatments in (
            (2 + seed % 6, 2 + seed % 4, 1 + seed % 3),
            (3 + seed % 5, 1 + seed % 5, 2 + seed % 2),
        ):
            problem = random_instance(k, n_tests, n_treatments, seed=seed)
            p = subset_weights(problem)
            assert_layers_match(problem, p)
            cost, best = replay_legacy(problem, p)
            dp = solve_dp(problem)
            np.testing.assert_array_equal(dp.cost, cost)
            np.testing.assert_array_equal(dp.best_action, best)
            assert dp.op_count == ((1 << problem.k) - 1) * problem.n_actions

    def test_tie_heavy_lowest_index_wins(self):
        # Duplicated actions tie bitwise; the fused kernel must keep the
        # legacy lowest-index winner everywhere.
        k = 4
        actions = (
            Action.test(0b0101, 1.0),
            Action.test(0b0101, 1.0),       # exact duplicate of action 0
            Action.treatment(0b1111, 2.0),
            Action.treatment(0b1111, 2.0),  # exact duplicate of action 2
            Action.test(0b0011, 1.0),
        )
        problem = TTProblem(k=k, weights=(1.0, 1.0, 1.0, 1.0), actions=actions)
        p = subset_weights(problem)
        assert_layers_match(problem, p)
        _, best = replay_legacy(problem, p)
        feasible = best >= 0
        assert feasible.any()
        # duplicates (1 and 3) can never win over their lower-index twin
        assert not np.isin(best[feasible], (1, 3)).any()

    def test_integral_ties(self):
        # Small-integer weights and costs make every DP value exact, so
        # ties are exact ties — the hardest case for argmin parity.
        rng = np.random.default_rng(7)
        for trial in range(5):
            k = 3 + trial % 3
            actions = tuple(
                Action.test(int(rng.integers(1, 1 << k)), float(rng.integers(1, 4)))
                for _ in range(3)
            ) + tuple(
                Action.treatment(int(rng.integers(1, 1 << k)), float(rng.integers(1, 4)))
                for _ in range(3)
            )
            weights = tuple(float(rng.integers(1, 4)) for _ in range(k))
            problem = TTProblem(k=k, weights=weights, actions=actions)
            p = subset_weights(problem)
            assert_layers_match(problem, p)

    def test_infeasible_all_inf_layers(self):
        # Tests alone can never cure anything: every non-empty subset
        # stays at INF and the argmin stays -1, in both kernels.
        problem = TTProblem(
            k=3,
            weights=(1.0, 2.0, 3.0),
            actions=(Action.test(0b011, 1.0), Action.test(0b101, 1.0)),
        )
        p = subset_weights(problem)
        assert_layers_match(problem, p)
        cost, best = replay_legacy(problem, p)
        assert np.isinf(cost[1:]).all()
        assert (best[1:] == -1).all()
        dp = solve_dp(problem)
        assert not dp.feasible
        np.testing.assert_array_equal(dp.best_action, best)

    def test_k_one(self):
        problem = TTProblem(
            k=1, weights=(2.0,), actions=(Action.treatment(0b1, 1.5),)
        )
        p = subset_weights(problem)
        assert_layers_match(problem, p)
        dp = solve_dp(problem)
        assert dp.feasible
        assert dp.optimal_cost == pytest.approx(3.0)

    def test_empty_layer_and_no_actions(self):
        arena = LayerArena()
        cost = np.full(8, np.inf)
        cost[0] = 0.0
        empty = np.empty(0, dtype=np.int64)
        best, arg = solve_layer_kernel_fused(
            empty, np.empty(0), cost,
            np.empty(0, dtype=np.int64), np.empty(0), np.empty(0, dtype=bool),
            arena=arena,
        )
        assert best.size == 0 and arg.size == 0
        # actions present but layer empty, and vice versa
        layer = np.array([1, 2], dtype=np.int64)
        best, arg = solve_layer_kernel_fused(
            layer, np.ones(2), cost,
            np.empty(0, dtype=np.int64), np.empty(0), np.empty(0, dtype=bool),
            arena=arena,
        )
        assert np.isinf(best).all()
        assert (arg == -1).all()

    def test_short_table_rejected(self):
        problem = random_instance(3, 2, 2, seed=0)
        p = subset_weights(problem)
        layer = layer_plan(3).layer(1)
        short = np.full(4, np.inf)  # table for k=2, layer holds k=3 masks
        with pytest.raises(InvalidProblem):
            solve_layer_kernel_fused(
                layer, p[layer], short,
                problem.subset_array, problem.cost_array, problem.test_mask_array,
            )

    def test_results_are_arena_views(self):
        # The contract: returned arrays live in the arena and are
        # overwritten by the next call — callers must scatter first.
        problem = random_instance(3, 2, 2, seed=1)
        p = subset_weights(problem)
        plan = layer_plan(3)
        cost = np.full(8, np.inf)
        cost[0] = 0.0
        arena = LayerArena()
        args = (problem.subset_array, problem.cost_array, problem.test_mask_array)
        layer1 = plan.layer(1)
        best1, _ = solve_layer_kernel_fused(layer1, p[layer1], cost, *args, arena=arena)
        snapshot = best1.copy()
        cost[layer1] = best1
        layer2 = plan.layer(2)
        best2, _ = solve_layer_kernel_fused(layer2, p[layer2], cost, *args, arena=arena)
        assert best2.base is arena.best
        assert not np.array_equal(best1, snapshot)  # overwritten in place

    def test_shared_arena_across_instances(self):
        # One arena reused across different instances and k's must not
        # leak state between solves.
        arena = LayerArena()
        for seed in range(4):
            problem = random_instance(3 + seed, 3, 2, seed=seed)
            p = subset_weights(problem)
            cold = solve_dp(problem)
            warm = solve_dp(problem, arena=arena)
            np.testing.assert_array_equal(cold.cost, warm.cost)
            np.testing.assert_array_equal(cold.best_action, warm.best_action)


class TestStrictMode:
    """Strict mode must be independent of the own-layer table contents.

    The spill store computes layers directly over file-backed tables
    whose own-layer entries may hold anything — stale bytes from a
    killed solve, scattered garbage from a corrupt slab — so the kernel
    must give the same bits whether those entries are the clean ``INF``
    sentinel, arbitrary finite floats, or NaNs.
    """

    @pytest.mark.parametrize("garbage", [np.nan, -np.inf, 0.0, -1e300, 3.25])
    def test_own_layer_garbage_does_not_leak(self, garbage):
        problem = random_instance(6, n_tests=6, n_treatments=4, seed=61)
        p = subset_weights(problem)
        plan = layer_plan(problem.k)
        args = (problem.subset_array, problem.cost_array, problem.test_mask_array)
        cost = np.full(1 << problem.k, np.inf)
        cost[0] = 0.0
        arena = LayerArena()
        for j in range(1, problem.k + 1):
            layer = plan.layer(j)
            legacy_best, legacy_arg = solve_layer_kernel(
                layer, p[layer], cost, *args
            )
            poisoned = cost.copy()
            poisoned[layer] = garbage
            strict_best, strict_arg = solve_layer_kernel_fused(
                layer, p[layer], poisoned, *args, arena=arena, strict=True
            )
            np.testing.assert_array_equal(legacy_best, strict_best)
            np.testing.assert_array_equal(legacy_arg, strict_arg)
            cost[layer] = legacy_best

    @pytest.mark.parametrize("seed", range(8))
    def test_strict_matches_nonstrict_on_clean_tables(self, seed):
        # On a table that *does* satisfy the INF invariant, the explicit
        # masks must change nothing: same bits, same tie-breaks.
        problem = random_instance(2 + seed % 5, 2 + seed % 4, 1 + seed % 3, seed=seed)
        p = subset_weights(problem)
        plan = layer_plan(problem.k)
        args = (problem.subset_array, problem.cost_array, problem.test_mask_array)
        cost = np.full(1 << problem.k, np.inf)
        cost[0] = 0.0
        arena = LayerArena()
        for j in range(1, problem.k + 1):
            layer = plan.layer(j)
            plain_best, plain_arg = solve_layer_kernel_fused(
                layer, p[layer], cost, *args, arena=arena
            )
            plain_best = plain_best.copy()
            plain_arg = plain_arg.copy()
            strict_best, strict_arg = solve_layer_kernel_fused(
                layer, p[layer], cost, *args, arena=arena, strict=True
            )
            np.testing.assert_array_equal(plain_best, strict_best)
            np.testing.assert_array_equal(plain_arg, strict_arg)
            cost[layer] = strict_best

    def test_strict_with_tiling(self):
        # Tiling and strict masks compose: the per-tile validity rows
        # must be resliced per tile, not reused stale.
        problem = random_instance(5, n_tests=5, n_treatments=3, seed=62)
        p = subset_weights(problem)
        plan = layer_plan(problem.k)
        args = (problem.subset_array, problem.cost_array, problem.test_mask_array)
        cost = np.full(1 << problem.k, np.inf)
        cost[0] = 0.0
        arena = LayerArena()
        for j in range(1, problem.k + 1):
            layer = plan.layer(j)
            legacy_best, legacy_arg = solve_layer_kernel(
                layer, p[layer], cost, *args
            )
            poisoned = cost.copy()
            poisoned[layer] = np.nan
            for tile in (0, 1, 3):
                strict_best, strict_arg = solve_layer_kernel_fused(
                    layer, p[layer], poisoned, *args,
                    arena=arena, tile=tile, strict=True,
                )
                np.testing.assert_array_equal(legacy_best, strict_best)
                np.testing.assert_array_equal(legacy_arg, strict_arg)
            cost[layer] = legacy_best


class TestTileEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TILE_ENV, raising=False)
        assert _env_tile() == DEFAULT_TILE

    def test_override_and_disable(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV, "1024")
        assert _env_tile() == 1024
        monkeypatch.setenv(TILE_ENV, "0")
        assert _env_tile() == 0

    @pytest.mark.parametrize("bad", ["-1", "abc", "1.5"])
    def test_invalid_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(TILE_ENV, bad)
        with pytest.raises(InvalidProblem):
            _env_tile()

    def test_env_tile_changes_nothing_numerically(self, monkeypatch):
        problem = random_instance(5, 4, 3, seed=3)
        p = subset_weights(problem)
        monkeypatch.setenv(TILE_ENV, "5")
        assert_layers_match(problem, p, tiles=(None,))
