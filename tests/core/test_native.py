"""The ``backend="native"`` tier: dispatch, fallback, and kernel parity.

Without numba (the normal state of this test environment) the tier must
degrade *loudly* to the fused numpy kernel — one ``RuntimeWarning``,
bit-identical tables — and the kernel's uncompiled Python body is held
to the fused kernel over a randomized differential (ties, infeasible
masks, strict-mode garbage poisoning) so the logic numba compiles is
covered either way.  With numba installed (the CI ``native-smoke`` leg)
the jitted kernel itself runs the same differential plus full solves.
"""

import warnings

import numpy as np
import pytest

from repro.core import solve
from repro.core.dispatch import BACKENDS, resolve_backend
from repro.core.engine import SolverEngine
from repro.core.errors import InvalidProblem
from repro.core.generators import random_instance
from repro.core.kernels import solve_layer_kernel_fused
from repro.core.native import (
    NATIVE_FALLBACK_MSG,
    _layer_kernel_py,
    native_available,
    solve_layer_kernel_native,
)
from repro.core.sequential import solve_dp
from repro.obs import trace as obs_trace

HAVE_NUMBA = native_available()


def _random_layer_case(rng):
    """One popcount layer with the table state solve_dp would present."""
    k = int(rng.integers(1, 8))
    n_sub = 1 << k
    j = int(rng.integers(1, k + 1))
    masks = np.arange(n_sub, dtype=np.int64)
    pc = np.array([bin(m).count("1") for m in masks])
    layer = masks[pc == j]
    p_layer = rng.random(layer.size)
    cost = np.where(pc < j, rng.random(n_sub), np.inf)
    n_act = int(rng.integers(1, 12))
    subsets = rng.integers(0, n_sub, size=n_act).astype(np.int64)
    # Small integer costs make argmin ties likely.
    costs = rng.integers(0, 5, size=n_act).astype(np.float64)
    is_test = rng.random(n_act) < 0.5
    return layer, p_layer, cost, pc, j, subsets, costs, is_test


class TestKernelDifferential:
    def test_python_body_matches_fused_kernel(self):
        rng = np.random.default_rng(0)
        for _ in range(150):
            layer, p_layer, cost, pc, j, subsets, costs, is_test = (
                _random_layer_case(rng)
            )
            strict = bool(rng.integers(0, 2))
            if strict:
                # Strict mode must be independent of unsolved-entry
                # garbage — poison them with NaN, the nastiest value.
                cost = cost.copy()
                cost[pc >= j] = np.nan
            tile = int(rng.choice([0, 1, 3, 16384]))
            bf, af = solve_layer_kernel_fused(
                layer, p_layer, cost, subsets, costs, is_test,
                tile=tile, strict=strict,
            )
            bn = np.empty(layer.size)
            an = np.empty(layer.size, dtype=np.int32)
            _layer_kernel_py(
                layer, p_layer, cost, subsets, costs, is_test,
                bn, an, tile, strict,
            )
            assert np.array_equal(bf, bn, equal_nan=True)
            assert np.array_equal(af, an)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_jitted_kernel_matches_fused_kernel(self):
        rng = np.random.default_rng(1)
        for _ in range(60):
            layer, p_layer, cost, pc, j, subsets, costs, is_test = (
                _random_layer_case(rng)
            )
            strict = bool(rng.integers(0, 2))
            if strict:
                cost = cost.copy()
                cost[pc >= j] = np.nan
            bf, af = solve_layer_kernel_fused(
                layer, p_layer, cost, subsets, costs, is_test, strict=strict
            )
            bn, an = solve_layer_kernel_native(
                layer, p_layer, cost, subsets, costs, is_test, strict=strict
            )
            assert np.array_equal(bf, bn, equal_nan=True)
            assert np.array_equal(af, an)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_native_solves_match_numpy_on_50_instances(self):
        for seed in range(50):
            problem = random_instance(
                4, n_tests=2 + seed % 3, n_treatments=1 + seed % 3, seed=seed
            )
            ref = solve(problem, backend="numpy")
            nat = solve(problem, backend="native")
            assert np.array_equal(ref.cost, nat.cost, equal_nan=True)
            assert np.array_equal(ref.best_action, nat.best_action)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_kernel_entry_raises_without_numba(self):
        rng = np.random.default_rng(2)
        layer, p_layer, cost, _, _, subsets, costs, is_test = (
            _random_layer_case(rng)
        )
        with pytest.raises(RuntimeError, match="numba"):
            solve_layer_kernel_native(
                layer, p_layer, cost, subsets, costs, is_test
            )


class TestDispatch:
    def test_native_registered(self):
        assert "native" in BACKENDS

    def test_auto_never_selects_native(self):
        problem = random_instance(4, 2, 2, seed=0)
        backend, _ = resolve_backend(problem, "auto", workers=1)
        assert backend in ("numpy", "parallel")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_fallback_is_loud_and_bit_identical(self):
        problem = random_instance(4, 2, 2, seed=3)
        ref = solve(problem, backend="numpy")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = solve(problem, backend="native")
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "numba is not installed" in str(w.message)
            for w in caught
        )
        assert np.array_equal(ref.cost, got.cost, equal_nan=True)
        assert np.array_equal(ref.best_action, got.best_action)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_resolve_backend_falls_back_to_numpy(self):
        problem = random_instance(3, 2, 2, seed=0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend, workers = resolve_backend(problem, "native")
        assert backend == "numpy" and workers == 1
        assert len(caught) == 1
        assert NATIVE_FALLBACK_MSG in str(caught[0].message)

    def test_mmap_store_rejects_native(self, tmp_path):
        problem = random_instance(4, 2, 2, seed=0)
        with pytest.raises(InvalidProblem, match="parallel backend"):
            solve(
                problem, backend="native",
                store="mmap", spill_dir=str(tmp_path / "spill"),
            )

    def test_checkpoint_rejects_native(self, tmp_path):
        problem = random_instance(4, 2, 2, seed=0)
        with pytest.raises(InvalidProblem, match="checkpointing"):
            solve(problem, backend="native", checkpoint=str(tmp_path / "c.ckpt"))

    def test_engine_accepts_native(self):
        problem = random_instance(4, 2, 2, seed=1)
        ref = solve(problem, backend="numpy")
        with SolverEngine(workers=1, backend="native") as engine:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                got = engine.solve(problem)
        assert np.array_equal(ref.cost, got.cost, equal_nan=True)
        assert np.array_equal(ref.best_action, got.best_action)

    def test_engine_solve_many_rejects_unknown_solver(self):
        with SolverEngine(workers=1) as engine:
            with pytest.raises(InvalidProblem, match="unknown solver"):
                engine.solve_many([], solver="quantum")


class TestLayerSpanMode:
    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_layer_spans_report_native_mode(self):
        problem = random_instance(4, 2, 2, seed=0)
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            solve_dp(problem, kernel=solve_layer_kernel_native)
        layers = [e for e in tracer.raw_events() if e["name"] == "layer"]
        assert layers and all(e["args"]["mode"] == "native" for e in layers)

    def test_layer_spans_report_numpy_mode_by_default(self):
        problem = random_instance(4, 2, 2, seed=0)
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            solve_dp(problem)
        layers = [e for e in tracer.raw_events() if e["name"] == "layer"]
        assert layers and all(e["args"]["mode"] == "numpy" for e in layers)

    def test_tracing_off_bit_identical_through_dispatch(self):
        problem = random_instance(4, 2, 2, seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            plain = solve(problem, backend="native")
            traced = solve(
                problem, backend="native", tracer=obs_trace.Tracer()
            )
        assert np.array_equal(plain.cost, traced.cost, equal_nan=True)
        assert np.array_equal(plain.best_action, traced.best_action)
