"""Checkpoint resume across backend/worker configurations.

The contract under test (satellite of the verification-harness PR): a
supervisor checkpoint written by one solver configuration and resumed by
*any* other must either produce tables bit-for-bit identical to a cold
solve or fail loudly with a :class:`SolverError` — never silently
diverge, and never silently skip the checkpoint.  Shards are pure
functions of the (problem, completed-prefix) state, so worker count must
not matter; single-process backends cannot honour a checkpoint at all,
so requesting one there must raise instead of quietly doing nothing.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import solve
from repro.core.errors import CheckpointMismatch, InvalidProblem
from repro.core.generators import random_instance
from repro.core.parallel import solve_dp_parallel
from repro.core.sequential import solve_dp_reference
from repro.core.supervisor import (
    ResiliencePolicy,
    load_checkpoint,
    save_checkpoint,
)
from repro.store import MmapStore, StoreSpec
from repro.util.bitops import popcount_array

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=11)
REF = solve_dp_reference(PROBLEM)

QUICK = ResiliencePolicy(timeout=5.0, max_retries=1, backoff=0.01, backoff_max=0.05)


def partial_checkpoint(path, problem, ref, completed_layer):
    """Write the exact on-disk state of a solve stopped after a layer.

    Layers ``popcount(S) > completed_layer`` are reset to the sentinel
    state the resume path expects (``INF`` cost, ``-1`` policy).
    """
    cost = np.array(ref.cost, dtype=np.float64, copy=True)
    best = np.array(ref.best_action, dtype=np.int64, copy=True)
    layers = popcount_array(np.arange(1 << problem.k), problem.k)
    todo = layers > completed_layer
    cost[todo] = np.inf
    best[todo] = -1
    save_checkpoint(path, problem, cost, best, completed_layer)


def partial_spill(spill_dir, problem, ref, completed_layer):
    """Seed a spill directory with ``completed_layer`` committed layers.

    Goes through the store's own commit protocol — the state on disk is
    exactly what a solve SIGKILLed after that layer's commit leaves.
    """
    store = MmapStore(problem, spill_dir=spill_dir)
    store.open()
    try:
        for j in range(1, completed_layer + 1):
            lo, hi = store.bounds(j)
            masks = np.asarray(store.order[lo:hi])
            store.cost[masks] = ref.cost[masks]
            store.best[masks] = ref.best_action[masks]
            store.commit_layer(j)
    finally:
        store.close()


class TestResumeAcrossWorkerCounts:
    @pytest.mark.parametrize("resume_workers", [1, 2, 3])
    def test_partial_resume_bit_identical(self, tmp_path, resume_workers):
        path = tmp_path / "partial.ckpt"
        partial_checkpoint(path, PROBLEM, REF, completed_layer=3)
        policy = dataclasses.replace(QUICK, checkpoint=str(path))
        result = solve_dp_parallel(
            PROBLEM, workers=resume_workers, min_shard=1, policy=policy
        )
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)

    def test_checkpoint_written_by_one_config_resumed_by_another(self, tmp_path):
        path = tmp_path / "cross.ckpt"
        policy = dataclasses.replace(
            QUICK, checkpoint=str(path), keep_checkpoint=True
        )
        first = solve_dp_parallel(PROBLEM, workers=3, min_shard=1, policy=policy)
        assert path.exists()
        resumed = solve_dp_parallel(PROBLEM, workers=1, min_shard=1, policy=policy)
        assert np.array_equal(first.cost, resumed.cost)
        assert np.array_equal(first.best_action, resumed.best_action)
        assert np.array_equal(resumed.cost, REF.cost)

    def test_resume_skips_completed_layers(self, tmp_path):
        path = tmp_path / "done.ckpt"
        partial_checkpoint(path, PROBLEM, REF, completed_layer=PROBLEM.k)
        policy = dataclasses.replace(QUICK, checkpoint=str(path))
        result = solve_dp_parallel(PROBLEM, workers=2, min_shard=1, policy=policy)
        # Fully-completed checkpoint: no layer was recomputed.
        assert result.recovery["layers"] == []
        assert {"kind": "resume", "completed_layer": PROBLEM.k} in result.recovery[
            "events"
        ]
        assert np.array_equal(result.cost, REF.cost)


class TestEveryPrefixResume:
    """Resume from *every* layer prefix, across both durable stores.

    A crash can land after any layer's barrier, so every prefix length
    must resume to bit-identical tables with exactly the remaining
    layers recomputed — on the legacy ``.ckpt`` store and on the mmap
    spill store, under both the in-parent and the pooled execution
    paths.
    """

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("prefix", range(0, 7))
    def test_ckpt_resume_from_every_prefix(self, tmp_path, prefix, workers):
        path = tmp_path / "prefix.ckpt"
        partial_checkpoint(path, PROBLEM, REF, completed_layer=prefix)
        policy = dataclasses.replace(QUICK, checkpoint=str(path))
        result = solve_dp_parallel(
            PROBLEM, workers=workers, min_shard=1, policy=policy
        )
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)
        assert result.recovery["resumed_from_layer"] == prefix
        assert [e["layer"] for e in result.recovery["layers"]] == list(
            range(prefix + 1, PROBLEM.k + 1)
        )

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("prefix", range(0, 7))
    def test_mmap_resume_from_every_prefix(self, tmp_path, prefix, workers):
        spill = str(tmp_path / "spill")
        partial_spill(spill, PROBLEM, REF, completed_layer=prefix)
        spec = StoreSpec(kind="mmap", spill_dir=spill)
        result = solve_dp_parallel(
            PROBLEM, workers=workers, min_shard=1, store=spec
        )
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)
        assert result.recovery["store"] == "mmap"
        if prefix:
            assert result.recovery["resumed_from_layer"] == prefix
        assert [e["layer"] for e in result.recovery["layers"]] == list(
            range(prefix + 1, PROBLEM.k + 1)
        )


class TestDispatchCheckpointRouting:
    def test_auto_backend_honours_checkpoint(self, tmp_path):
        # Below the auto parallel threshold: without the routing fix the
        # numpy backend would run and the checkpoint silently never
        # appear on disk.
        small = random_instance(4, n_tests=3, n_treatments=3, seed=7)
        path = tmp_path / "auto.ckpt"
        keep = ResiliencePolicy(keep_checkpoint=True)
        result = solve(
            small, backend="auto", workers=2, checkpoint=str(path), policy=keep
        )
        assert path.exists()
        cold = solve_dp_reference(small)
        assert np.array_equal(result.cost, cold.cost)
        assert np.array_equal(result.best_action, cold.best_action)
        # Resuming the finished checkpoint must be a no-op solve with
        # identical tables.
        resumed = solve(
            small, backend="auto", workers=2, checkpoint=str(path), policy=keep
        )
        assert np.array_equal(resumed.cost, cold.cost)
        assert np.array_equal(resumed.best_action, cold.best_action)

    @pytest.mark.parametrize("backend", ["numpy", "reference"])
    def test_single_process_backend_with_checkpoint_raises(self, tmp_path, backend):
        path = tmp_path / "nope.ckpt"
        with pytest.raises(InvalidProblem, match="parallel backend"):
            solve(PROBLEM, backend=backend, checkpoint=str(path))
        assert not path.exists()

    @pytest.mark.parametrize("backend", ["numpy", "reference"])
    def test_policy_checkpoint_also_raises(self, tmp_path, backend):
        policy = dataclasses.replace(QUICK, checkpoint=str(tmp_path / "p.ckpt"))
        with pytest.raises(InvalidProblem, match="parallel backend"):
            solve(PROBLEM, backend=backend, policy=policy)

    def test_policy_without_checkpoint_still_allowed(self):
        # A bare resilience policy on a single-process backend is inert
        # but harmless; only the checkpoint field forces parallel.
        result = solve(PROBLEM, backend="numpy", policy=QUICK)
        assert np.array_equal(result.cost, REF.cost)


class TestMismatchIsLoud:
    def test_resume_with_different_problem_raises(self, tmp_path):
        path = tmp_path / "stale.ckpt"
        partial_checkpoint(path, PROBLEM, REF, completed_layer=2)
        other = random_instance(6, n_tests=6, n_treatments=4, seed=99)
        policy = dataclasses.replace(QUICK, checkpoint=str(path))
        with pytest.raises(CheckpointMismatch):
            solve_dp_parallel(other, workers=2, min_shard=1, policy=policy)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "trunc.ckpt"
        partial_checkpoint(path, PROBLEM, REF, completed_layer=2)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointMismatch):
            load_checkpoint(path, PROBLEM)
