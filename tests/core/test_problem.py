"""Tests for the TT problem model."""

import math

import pytest
from hypothesis import given

from repro.core.problem import Action, ActionKind, TTProblem
from tests.conftest import tt_problems


class TestAction:
    def test_test_constructor_accepts_iterable(self):
        a = Action.test({0, 2}, 1.5)
        assert a.subset == 0b101
        assert a.is_test and not a.is_treatment

    def test_treatment_constructor_accepts_mask(self):
        a = Action.treatment(0b11, 2.0)
        assert a.subset == 3
        assert a.is_treatment

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Action.test({0}, -1.0)

    def test_nan_cost_rejected(self):
        with pytest.raises(ValueError):
            Action.test({0}, math.nan)

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            Action(ActionKind.TEST, -1, 1.0)

    def test_labels(self):
        assert Action.test({0}, 1.0, name="x-ray").label(3) == "x-ray"
        assert Action.test({0}, 1.0).label(3) == "test#3"
        assert Action.treatment({0}, 1.0).label(7) == "treat#7"

    def test_inf_cost_allowed(self):
        # Padding treatments use INF costs.
        a = Action.treatment({0}, math.inf)
        assert math.isinf(a.cost)


class TestTTProblemValidation:
    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            TTProblem(k=2, weights=(1.0,), actions=(Action.treatment(0b11, 1.0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TTProblem.build([1.0, -0.5], [Action.treatment(0b11, 1.0)])

    def test_zero_weight_allowed_if_total_positive(self):
        # Zero-probability objects are legal (they arise naturally from
        # conditioning); only the total weight must be positive.
        p = TTProblem.build([1.0, 0.0], [Action.treatment(0b11, 1.0)])
        assert p.weights == (1.0, 0.0)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            TTProblem.build([0.0, 0.0], [Action.treatment(0b11, 1.0)])

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            TTProblem(k=0, weights=(), actions=(Action.treatment(0, 1.0),))

    def test_no_actions_rejected(self):
        with pytest.raises(ValueError):
            TTProblem.build([1.0], [])

    def test_action_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            TTProblem.build([1.0], [Action.treatment({3}, 1.0)])


class TestTTProblemAccessors:
    def test_counts(self, tiny_problem):
        assert tiny_problem.n_actions == 3
        assert tiny_problem.n_tests == 1
        assert tiny_problem.n_treatments == 2
        assert tiny_problem.universe == 0b111

    def test_arrays(self, tiny_problem):
        assert tiny_problem.cost_array.tolist() == [1.0, 4.0, 5.0]
        assert tiny_problem.subset_array.tolist() == [0b011, 0b001, 0b110]
        assert tiny_problem.test_mask_array.tolist() == [True, False, False]

    def test_weight_of(self, tiny_problem):
        assert tiny_problem.weight_of(0b101) == 5.0
        assert tiny_problem.weight_of(0) == 0.0

    def test_stats(self, tiny_problem):
        s = tiny_problem.stats()
        assert s["pe_demand"] == 3 * 8
        assert s["adequate"]


class TestAdequacy:
    def test_adequate(self, tiny_problem):
        assert tiny_problem.is_adequate()
        tiny_problem.require_adequate()

    def test_inadequate_detected(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [Action.test({0}, 1.0), Action.treatment({0}, 1.0)],
        )
        assert not p.is_adequate()
        with pytest.raises(ValueError, match="inadequate"):
            p.require_adequate()

    def test_treatable_mask(self, tiny_problem):
        assert tiny_problem.treatable_mask() == 0b111

    @given(tt_problems())
    def test_generated_problems_adequate(self, problem):
        assert problem.is_adequate()


class TestOrderingAndSerialization:
    def test_paper_order_puts_tests_first(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.treatment({0}, 1.0, name="tr"),
                Action.test({0}, 1.0, name="te"),
                Action.treatment({1}, 1.0, name="tr2"),
            ],
        )
        ordered = p.paper_order()
        kinds = [a.kind for a in ordered.actions]
        assert kinds == [ActionKind.TEST, ActionKind.TREATMENT, ActionKind.TREATMENT]

    def test_json_roundtrip(self, tiny_problem):
        again = TTProblem.from_json(tiny_problem.to_json())
        assert again == tiny_problem

    @given(tt_problems())
    def test_json_roundtrip_property(self, problem):
        assert TTProblem.from_json(problem.to_json()) == problem

    def test_describe_mentions_all_actions(self, tiny_problem):
        text = tiny_problem.describe()
        for name in ("swab", "drugA", "drugB"):
            assert name in text
