"""Strict shard discipline as the default on the RAM paths.

The spill store's strict kernel already has a poisoned-table
differential suite (``tests/core/test_kernels.py::TestStrictMode``);
these tests mirror it for the paths the strict-by-default change
touched: ``RamStore.run_parent_slice``, the engine's in-parent closure,
and the sharded ``solve()`` entry point — plus the
``REPRO_SHARD_DISCIPLINE`` resolver itself.
"""

import numpy as np
import pytest

from repro.core import solve
from repro.core.engine import SolverEngine
from repro.core.errors import InvalidProblem
from repro.core.generators import random_instance
from repro.core.kernels import (
    SHARD_DISCIPLINE_ENV,
    LayerArena,
    shard_discipline,
)
from repro.core.sequential import solve_dp_reference
from repro.store import RamStore

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=61)
REF = solve_dp_reference(PROBLEM)

GARBAGE = [np.nan, -np.inf, 0.0, -1e300, 3.25]


class TestShardDisciplineResolver:
    def test_default_is_strict(self, monkeypatch):
        monkeypatch.delenv(SHARD_DISCIPLINE_ENV, raising=False)
        assert shard_discipline() == "strict"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SHARD_DISCIPLINE_ENV, "snapshot")
        assert shard_discipline() == "snapshot"

    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv(SHARD_DISCIPLINE_ENV, "snapshot")
        assert shard_discipline("strict") == "strict"

    def test_env_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(SHARD_DISCIPLINE_ENV, "laxist")
        with pytest.raises(InvalidProblem, match=SHARD_DISCIPLINE_ENV):
            shard_discipline()

    def test_explicit_typo_fails_loudly(self):
        with pytest.raises(InvalidProblem, match="shard discipline"):
            shard_discipline("relaxed")


class TestRamStoreStrict:
    """``run_parent_slice`` under the strict default reads the live
    table — own-layer garbage must not leak into the results."""

    def _open(self, discipline):
        store = RamStore(PROBLEM, use_shm=False)
        store.set_discipline(discipline)
        store.open()
        return store

    def _run_layers(self, store, poison=None):
        args = (
            PROBLEM.subset_array,
            PROBLEM.cost_array,
            PROBLEM.test_mask_array,
        )
        arena = LayerArena()
        for j in range(1, PROBLEM.k + 1):
            lo, hi = store.bounds(j)
            if poison is not None:
                store.cost[store.order[lo:hi]] = poison
            store.run_parent_slice(lo, hi, *args, arena)
        return store

    @pytest.mark.parametrize("garbage", GARBAGE)
    def test_own_layer_garbage_does_not_leak(self, garbage):
        store = self._open("strict")
        try:
            self._run_layers(store, poison=garbage)
            np.testing.assert_array_equal(store.cost, REF.cost)
            np.testing.assert_array_equal(store.best, REF.best_action)
        finally:
            store.close()

    @pytest.mark.parametrize("discipline", ["strict", "snapshot"])
    def test_clean_tables_match_reference(self, discipline):
        store = self._open(discipline)
        try:
            self._run_layers(store)
            np.testing.assert_array_equal(store.cost, REF.cost)
            np.testing.assert_array_equal(store.best, REF.best_action)
        finally:
            store.close()

    def test_snapshot_discipline_survives_garbage_too(self):
        # The legacy discipline re-INFs its snapshot, so it is *also*
        # immune to own-layer garbage — the bit-identity contract the
        # sweep pins holds from both directions.
        store = self._open("snapshot")
        try:
            self._run_layers(store, poison=np.nan)
            np.testing.assert_array_equal(store.cost, REF.cost)
        finally:
            store.close()


class TestSolveLevelDiscipline:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("discipline", ["strict", "snapshot"])
    def test_bit_identity_across_disciplines(self, workers, discipline):
        result = solve(
            PROBLEM,
            backend="parallel",
            workers=workers,
            discipline=discipline,
        )
        np.testing.assert_array_equal(result.cost, REF.cost)
        np.testing.assert_array_equal(result.best_action, REF.best_action)

    def test_env_typo_fails_before_any_work(self, monkeypatch):
        monkeypatch.setenv(SHARD_DISCIPLINE_ENV, "strct")
        with pytest.raises(InvalidProblem, match=SHARD_DISCIPLINE_ENV):
            solve(PROBLEM, backend="parallel", workers=1)

    def test_strict_reports_snapshot_bytes_saved(self):
        result = solve(PROBLEM, backend="parallel", workers=1)
        assert result.metrics.get("snapshot.bytes_saved", 0) > 0

    def test_snapshot_discipline_saves_nothing(self):
        result = solve(
            PROBLEM, backend="parallel", workers=1, discipline="snapshot"
        )
        assert result.metrics.get("snapshot.bytes_saved", 0) == 0


class TestEngineDiscipline:
    @pytest.mark.parametrize("discipline", ["strict", "snapshot"])
    def test_engine_discipline_param(self, discipline):
        engine = SolverEngine(
            backend="parallel", workers=2, min_shard=1, discipline=discipline
        )
        try:
            result = engine.solve(PROBLEM)
            np.testing.assert_array_equal(result.cost, REF.cost)
            np.testing.assert_array_equal(result.best_action, REF.best_action)
        finally:
            engine.close()

    def test_explicit_discipline_ignores_env(self, monkeypatch):
        # The engine resolves its discipline once at construction from
        # the explicit argument; a (bogus) env value set afterwards must
        # never be consulted by a warm pool.
        engine = SolverEngine(
            backend="parallel", workers=2, min_shard=1, discipline="strict"
        )
        try:
            monkeypatch.setenv(SHARD_DISCIPLINE_ENV, "not-a-discipline")
            result = engine.solve(PROBLEM)
            np.testing.assert_array_equal(result.cost, REF.cost)
        finally:
            engine.close()
