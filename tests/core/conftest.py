"""Core-suite fixtures: shared-memory leak detection.

Every test in ``tests/core`` runs under an autouse fixture that snapshots
``/dev/shm`` before and after; any ``psm_*`` segment (CPython's
``shared_memory`` name prefix) created but not unlinked by the test —
including by injected-crash tests, where workers die without cleanup —
fails the test.  This is the acceptance guard for the leak-proof
:class:`repro.core.supervisor.SharedTables` owner.
"""

import os

import pytest

_SHM_DIR = "/dev/shm"


def _psm_segments() -> set[str]:
    try:
        return {n for n in os.listdir(_SHM_DIR) if n.startswith("psm_")}
    except OSError:  # platform without /dev/shm — nothing to guard
        return set()


@pytest.fixture(autouse=True)
def shm_leak_guard():
    """Fail any test that strands a POSIX shared-memory segment."""
    before = _psm_segments()
    yield
    leaked = _psm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
