"""Workload generators: adequacy, determinism, domain structure."""

import pytest

from repro.core.generators import (
    WORKLOADS,
    fault_location_instance,
    lab_analysis_instance,
    medical_instance,
    random_instance,
    taxonomy_instance,
)
from repro.core.problem import ActionKind


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("k", [2, 4, 6, 8])
@pytest.mark.parametrize("seed", [0, 1])
class TestAllWorkloads:
    def test_adequate(self, name, k, seed):
        problem = WORKLOADS[name](k, seed=seed)
        assert problem.is_adequate()

    def test_universe_size(self, name, k, seed):
        assert WORKLOADS[name](k, seed=seed).k == k

    def test_deterministic(self, name, k, seed):
        a = WORKLOADS[name](k, seed=seed)
        b = WORKLOADS[name](k, seed=seed)
        assert a == b

    def test_seed_varies(self, name, k, seed):
        a = WORKLOADS[name](k, seed=seed)
        b = WORKLOADS[name](k, seed=seed + 100)
        assert a != b  # overwhelmingly likely for random structures

    def test_paper_ordering(self, name, k, seed):
        """Generators emit tests before treatments (paper convention)."""
        problem = WORKLOADS[name](k, seed=seed)
        kinds = [a.kind for a in problem.actions]
        if ActionKind.TEST in kinds:
            last_test = max(i for i, x in enumerate(kinds) if x == ActionKind.TEST)
            first_treat = min(
                i for i, x in enumerate(kinds) if x == ActionKind.TREATMENT
            )
            assert last_test < first_treat


class TestRandomInstance:
    def test_action_counts_at_least_requested(self):
        p = random_instance(5, n_tests=4, n_treatments=3, seed=0)
        assert p.n_tests == 4
        assert p.n_treatments >= 3  # coverage fallbacks may add more

    def test_cost_range_respected_for_tests(self):
        p = random_instance(5, 4, 3, seed=1, cost_range=(2.0, 3.0))
        for a in p.actions:
            if a.is_test:
                assert 2.0 <= a.cost <= 3.0


class TestDomainStructure:
    def test_medical_has_skewed_weights(self):
        p = medical_instance(8, seed=0)
        ws = sorted(p.weights)
        assert ws[-1] / ws[0] >= 4.0  # Zipf-ish spread

    def test_medical_has_broad_spectrum_treatment(self):
        p = medical_instance(8, seed=0)
        names = [a.name for a in p.actions]
        assert "broad" in names

    def test_fault_has_bisection_probes(self):
        p = fault_location_instance(8, seed=0)
        probe_sets = [a.subset for a in p.actions if a.is_test]
        # The first-level bisection (lower half) must be present.
        assert 0b00001111 in probe_sets

    def test_fault_replacements_cover_all_modules(self):
        p = fault_location_instance(6, seed=0)
        singles = [a.subset for a in p.actions if a.is_treatment and bin(a.subset).count("1") == 1]
        assert len(set(singles)) == 6

    def test_taxonomy_tests_nest(self):
        """Dichotomous key couplets come from a tree, so any two test sets
        are nested or disjoint (laminar family)."""
        p = taxonomy_instance(8, seed=0)
        sets = [a.subset for a in p.actions if a.is_test]
        for x in sets:
            for y in sets:
                inter = x & y
                assert inter == 0 or inter == x or inter == y

    def test_lab_has_overlapping_assays(self):
        p = lab_analysis_instance(8, seed=0)
        sets = [a.subset for a in p.actions if a.is_test]
        overlapping = any(
            (x & y) not in (0, x, y) for x in sets for y in sets if x != y
        )
        assert overlapping

    def test_taxonomy_singleton_determinations(self):
        p = taxonomy_instance(6, seed=1)
        singles = {a.subset for a in p.actions if a.is_treatment}
        assert {1 << j for j in range(6)} <= singles
