"""The warm :class:`~repro.core.engine.SolverEngine`.

Amortization must never cost correctness: every warm result here is
checked bit-for-bit against the cold paths (``solve_dp`` and the
one-shot ``solve``), including the second and later solves on a warm
pool — the case a leaked table or a stale arena would break.
"""

import numpy as np
import pytest

from repro.core import SolverEngine, solve
from repro.core.errors import SolverError
from repro.core.generators import random_instance
from repro.core.sequential import solve_dp
from repro.core.supervisor import ResiliencePolicy


def assert_same(cold, warm):
    np.testing.assert_array_equal(cold.cost, warm.cost)
    np.testing.assert_array_equal(cold.best_action, warm.best_action)
    assert cold.op_count == warm.op_count


class TestSequentialEngine:
    def test_warm_reuse_bit_identical(self):
        problems = [random_instance(4 + i % 3, 3, 2, seed=i) for i in range(5)]
        with SolverEngine(workers=1) as engine:
            for problem in problems:
                assert_same(solve_dp(problem), engine.solve(problem))
        assert engine.solves == len(problems)

    def test_second_solve_of_same_problem(self):
        problem = random_instance(5, 4, 3, seed=9)
        cold = solve_dp(problem)
        with SolverEngine(workers=1) as engine:
            first = engine.solve(problem)
            second = engine.solve(problem)
        assert_same(cold, first)
        assert_same(cold, second)

    def test_solve_many_matches_individual(self):
        problems = [random_instance(4, 3, 2, seed=i) for i in range(4)]
        with SolverEngine(workers=1) as engine:
            batch = engine.solve_many(problems)
        for problem, warm in zip(problems, batch):
            assert_same(solve_dp(problem), warm)

    def test_solve_many_empty(self):
        with SolverEngine(workers=1) as engine:
            assert engine.solve_many([]) == []


class TestParallelEngine:
    def test_warm_pool_bit_identical(self):
        problems = [random_instance(8, 4, 3, seed=i) for i in range(3)]
        with SolverEngine(workers=2, backend="parallel") as engine:
            for problem in problems:
                assert_same(solve_dp(problem), engine.solve(problem))
            # repeat on the warm pool: tables must be fully reset
            assert_same(solve_dp(problems[0]), engine.solve(problems[0]))

    def test_k_switch_rebuilds_tables(self):
        with SolverEngine(workers=2, backend="parallel") as engine:
            for k in (7, 8, 7):
                problem = random_instance(k, 3, 2, seed=k)
                assert_same(solve_dp(problem), engine.solve(problem))

    def test_solve_many_pipelines(self):
        problems = [random_instance(8, 4, 3, seed=10 + i) for i in range(3)]
        with SolverEngine(workers=2, backend="parallel") as engine:
            batch = engine.solve_many(problems)
        for problem, warm in zip(problems, batch):
            assert_same(solve_dp(problem), warm)

    def test_recovery_log_attached(self):
        problem = random_instance(8, 4, 3, seed=1)
        with SolverEngine(workers=2, backend="parallel") as engine:
            result = engine.solve(problem)
        assert result.recovery is not None
        assert len(result.recovery["layers"]) == problem.k


class TestEngineLifecycle:
    def test_closed_engine_rejects_solves(self):
        engine = SolverEngine(workers=1)
        engine.close()
        with pytest.raises(SolverError):
            engine.solve(random_instance(4, 3, 2, seed=0))

    def test_close_is_idempotent(self):
        engine = SolverEngine(workers=1)
        engine.solve(random_instance(4, 3, 2, seed=0))
        engine.close()
        engine.close()

    def test_checkpoint_policy_rejected(self, tmp_path):
        policy = ResiliencePolicy(checkpoint=str(tmp_path / "solve.ckpt"))
        with pytest.raises(SolverError):
            SolverEngine(workers=1, policy=policy)

    def test_reference_backend_rejected(self):
        with SolverEngine(workers=1, backend="reference") as engine:
            with pytest.raises(SolverError):
                engine.solve(random_instance(3, 2, 2, seed=0))


class TestDispatchIntegration:
    def test_solve_routes_through_engine(self):
        problem = random_instance(5, 3, 2, seed=4)
        cold = solve(problem)
        with SolverEngine(workers=1) as engine:
            routed = solve(problem, engine=engine)
        assert_same(cold, routed)
        assert engine.solves == 1

    def test_checkpoint_falls_through_to_cold_path(self, tmp_path):
        # checkpoint solves carry per-solve failure-domain state the warm
        # engine cannot share; solve() must take the cold path for them.
        problem = random_instance(8, 3, 2, seed=5)
        policy = ResiliencePolicy(checkpoint=str(tmp_path / "solve.ckpt"))
        with SolverEngine(workers=1) as engine:
            result = solve(
                problem,
                engine=engine,
                backend="parallel",
                workers=2,
                policy=policy,
            )
        assert engine.solves == 0
        assert_same(solve_dp(problem), result)
