"""Optimum-preserving preprocessing: the invariance properties."""

import pytest
from hypothesis import given, settings

from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from repro.core.transforms import (
    canonicalize,
    merge_equivalent_objects,
    remove_dominated_treatments,
    remove_duplicate_actions,
)
from tests.conftest import tt_problems


def _with_junk(problem: TTProblem) -> TTProblem:
    """Inject duplicates and dominated treatments into an instance."""
    extra = []
    for a in problem.actions[:2]:
        extra.append(Action(a.kind, a.subset, a.cost + 1.0, a.name + "_dup"))
    full = problem.universe
    # A dominated treatment: strictly smaller set, strictly higher cost
    # than the guaranteed universe-covering treatment.
    cover_cost = max(a.cost for a in problem.actions if a.is_treatment)
    extra.append(Action.treatment(1, cover_cost + 5.0, "dominated"))
    extra.append(Action.treatment(full, cover_cost + 7.0, "dominated_cover"))
    return problem.with_actions(list(problem.actions) + extra)


class TestRemoveDuplicates:
    def test_keeps_cheapest(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.treatment({0, 1}, 5.0, "a"),
                Action.treatment({0, 1}, 3.0, "b"),
                Action.test({0}, 2.0, "t1"),
                Action.test({0}, 1.0, "t2"),
            ],
        )
        out = remove_duplicate_actions(p)
        assert out.n_actions == 2
        assert {a.name for a in out.actions} == {"b", "t2"}

    def test_noop_when_clean(self, tiny_problem):
        assert remove_duplicate_actions(tiny_problem) is tiny_problem

    def test_kind_distinguishes(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [Action.test({0}, 1.0), Action.treatment({0}, 2.0), Action.treatment({0, 1}, 1.0)],
        )
        assert remove_duplicate_actions(p).n_actions == 3


class TestDominatedTreatments:
    def test_superset_cheaper_dominates(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.treatment({0}, 5.0, "narrow"),
                Action.treatment({0, 1}, 4.0, "broad"),
            ],
        )
        out = remove_dominated_treatments(p)
        assert [a.name for a in out.actions] == ["broad"]

    def test_cheaper_subset_survives(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.treatment({0}, 1.0, "cheap_narrow"),
                Action.treatment({0, 1}, 4.0, "broad"),
            ],
        )
        out = remove_dominated_treatments(p)
        assert out.n_actions == 2

    def test_tests_never_dropped(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.test({0}, 9.0),
                Action.treatment({0, 1}, 1.0),
            ],
        )
        assert remove_dominated_treatments(p).n_tests == 1

    def test_exact_ties_keep_one(self):
        p = TTProblem.build(
            [1.0],
            [Action.treatment({0}, 2.0, "x"), Action.treatment({0}, 2.0, "y")],
        )
        assert remove_dominated_treatments(p).n_actions == 1


class TestMergeObjects:
    def test_merges_indistinguishable(self):
        # Objects 0 and 1 appear together in every action.
        p = TTProblem.build(
            [2.0, 3.0, 1.0],
            [
                Action.test({0, 1}, 1.0),
                Action.treatment({0, 1, 2}, 4.0),
            ],
        )
        reduced, groups = merge_equivalent_objects(p)
        assert reduced.k == 2
        assert [sorted(g) for g in groups] == [[0, 1], [2]]
        assert reduced.weights[0] == 5.0  # summed

    def test_noop_when_distinguishable(self, tiny_problem):
        reduced, groups = merge_equivalent_objects(tiny_problem)
        assert reduced.k == tiny_problem.k
        assert groups == [[0], [1], [2]]

    def test_merge_preserves_optimum(self):
        p = TTProblem.build(
            [2.0, 3.0, 1.0],
            [
                Action.test({0, 1}, 1.0),
                Action.treatment({0, 1}, 4.0),
                Action.treatment({2}, 2.0),
            ],
        )
        reduced, _ = merge_equivalent_objects(p)
        assert solve_dp(reduced).optimal_cost == pytest.approx(
            solve_dp(p).optimal_cost
        )


class TestInvarianceProperties:
    @settings(max_examples=30, deadline=None)
    @given(tt_problems(max_k=5))
    def test_duplicates_preserve_optimum(self, problem):
        junk = _with_junk(problem)
        assert solve_dp(remove_duplicate_actions(junk)).optimal_cost == pytest.approx(
            solve_dp(junk).optimal_cost
        )

    @settings(max_examples=30, deadline=None)
    @given(tt_problems(max_k=5))
    def test_domination_preserves_optimum(self, problem):
        junk = _with_junk(problem)
        assert solve_dp(remove_dominated_treatments(junk)).optimal_cost == pytest.approx(
            solve_dp(junk).optimal_cost
        )

    @settings(max_examples=30, deadline=None)
    @given(tt_problems(max_k=5))
    def test_canonicalize_preserves_optimum(self, problem):
        junk = _with_junk(problem)
        report = canonicalize(junk)
        assert solve_dp(report.problem).optimal_cost == pytest.approx(
            solve_dp(junk).optimal_cost
        )
        # groups partition the original universe
        flat = sorted(j for g in report.groups for j in g)
        assert flat == list(range(junk.k))

    @settings(max_examples=20, deadline=None)
    @given(tt_problems(max_k=4))
    def test_canonicalize_never_grows(self, problem):
        report = canonicalize(problem)
        assert report.problem.k <= problem.k
        assert report.problem.n_actions <= problem.n_actions
        assert report.pe_demand_ratio <= 1.0


class TestReport:
    def test_report_counts(self):
        p = TTProblem.build(
            [1.0, 1.0],
            [
                Action.treatment({0, 1}, 1.0, "best"),
                Action.treatment({0, 1}, 2.0, "dup"),
                Action.treatment({0}, 3.0, "dom"),
            ],
        )
        report = canonicalize(p)
        assert report.actions_saved == 2
        assert report.original_n_actions == 3
        # 0 and 1 become indistinguishable once only "best" remains.
        assert report.problem.k == 1
        assert report.k_saved == 1
