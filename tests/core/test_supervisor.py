"""Fault-tolerance suite for the supervised parallel engine.

The contract: with ``kill``, ``hang``, ``slow`` and ``exc`` faults
injected at arbitrary layers/shards, ``solve(backend="parallel")`` still
returns ``cost``/``best_action`` tables **bit-for-bit** identical to
``solve_dp_reference``; a solve interrupted after layer ``j`` resumes
from its checkpoint without recomputing layers ``<= j``; and no failure
mode — including injected crashes — leaks a shared-memory segment (the
autouse ``shm_leak_guard`` in ``tests/core/conftest.py`` asserts that
for every test here).
"""

import dataclasses
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core import solve
from repro.core.errors import (
    CheckpointMismatch,
    InvalidProblem,
    ShardTimeout,
    SolverError,
    WorkerCrash,
)
from repro.core.faults import Fault, inject, parse_fault_spec
from repro.core.generators import random_instance
from repro.core.parallel import solve_dp_parallel
from repro.core.sequential import solve_dp_reference
from repro.core.supervisor import (
    ResiliencePolicy,
    SharedTables,
    load_checkpoint,
    problem_content_hash,
    save_checkpoint,
)

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=3)
REF = solve_dp_reference(PROBLEM)

# Fast-failure knobs so the recovery paths run in milliseconds.
QUICK = ResiliencePolicy(timeout=5.0, max_retries=2, backoff=0.01, backoff_max=0.05)


def solve_with_fault(spec, policy=QUICK, problem=PROBLEM, workers=2):
    os.environ["REPRO_FAULT_SPEC"] = spec
    try:
        return solve_dp_parallel(problem, workers=workers, min_shard=1, policy=policy)
    finally:
        os.environ.pop("REPRO_FAULT_SPEC", None)


def assert_bit_for_bit(result, ref=REF):
    assert np.array_equal(result.cost, ref.cost)
    assert np.array_equal(result.best_action, ref.best_action)


class TestExceptionTaxonomy:
    def test_hierarchy(self):
        for cls in (WorkerCrash, ShardTimeout, CheckpointMismatch, InvalidProblem):
            assert issubclass(cls, SolverError)
        # pre-taxonomy call sites wrote `except ValueError`
        assert issubclass(InvalidProblem, ValueError)

    def test_crash_context(self):
        exc = WorkerCrash("boom", layer=3, shard=1)
        assert (exc.layer, exc.shard) == (3, 1)


class TestFaultSpecParsing:
    def test_single(self):
        (fault,) = parse_fault_spec("kill:layer=12:shard=1")
        assert fault == Fault("kill", layer=12, shard=1)

    def test_multiple_and_separators(self):
        faults = parse_fault_spec("kill:layer=2; slow:ms=200, hang")
        assert [f.kind for f in faults] == ["kill", "slow", "hang"]
        assert faults[1].ms == 200.0

    def test_times_and_matching(self):
        (fault,) = parse_fault_spec("exc:layer=4:times=2")
        assert fault.matches(4, 0, 0) and fault.matches(4, 7, 1)
        assert not fault.matches(4, 0, 2)  # attempt past `times`
        assert not fault.matches(5, 0, 0)  # wrong layer

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:layer=1",  # unknown kind
            "kill:depth=3",  # unknown field
            "kill:layer=abc",  # not a number
            "slow:ms=-5",  # negative sleep
            "kill:times=0",  # zero attempts
            "kill layer=1",  # missing '='
        ],
    )
    def test_invalid_specs_fail_loudly(self, bad):
        with pytest.raises(InvalidProblem):
            parse_fault_spec(bad)

    def test_bad_env_spec_fails_in_parent(self, monkeypatch):
        """A typo'd REPRO_FAULT_SPEC fails the solve up front, not silently."""
        monkeypatch.setenv("REPRO_FAULT_SPEC", "oops:layer=1")
        with pytest.raises(InvalidProblem):
            solve_dp_parallel(PROBLEM, workers=2, min_shard=1)

    def test_inject_noop_without_spec(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
        inject(3, 0, 0)  # must not raise, sleep, or exit

    def test_inject_exc_via_argument(self):
        with pytest.raises(RuntimeError, match="injected"):
            inject(3, 0, 0, spec="exc:layer=3")
        inject(4, 0, 0, spec="exc:layer=3")  # non-matching layer: no-op


class TestFaultRecovery:
    """kill/hang/slow at arbitrary layers and shards: still bit-for-bit."""

    @pytest.mark.parametrize("layer", [2, 3, 5])
    @pytest.mark.parametrize("shard", [0, 1])
    def test_kill_recovers(self, layer, shard):
        result = solve_with_fault(f"kill:layer={layer}:shard={shard}")
        assert_bit_for_bit(result)
        assert result.recovery["crashes"] >= 1
        assert result.recovery["retries"] >= 1

    @pytest.mark.parametrize("layer", [2, 4])
    def test_kill_every_shard_of_a_layer(self, layer):
        result = solve_with_fault(f"kill:layer={layer}")
        assert_bit_for_bit(result)
        assert result.recovery["crashes"] >= 1

    @pytest.mark.parametrize("layer", [2, 3])
    def test_hang_recovers_via_timeout_and_respawn(self, layer):
        policy = dataclasses.replace(QUICK, timeout=0.3)
        result = solve_with_fault(f"hang:layer={layer}", policy)
        assert_bit_for_bit(result)
        assert result.recovery["timeouts"] >= 1
        assert result.recovery["respawns"] >= 1

    def test_slow_shards_just_finish(self):
        result = solve_with_fault("slow:ms=50")
        assert_bit_for_bit(result)
        assert result.recovery["retries"] == 0

    def test_worker_exception_retried(self):
        result = solve_with_fault("exc:layer=4")
        assert_bit_for_bit(result)
        assert result.recovery["crashes"] >= 1

    def test_combined_faults(self):
        policy = dataclasses.replace(QUICK, timeout=0.4)
        result = solve_with_fault(
            "kill:layer=2:shard=0; slow:ms=20; hang:layer=5:shard=1", policy
        )
        assert_bit_for_bit(result)
        assert result.recovery["crashes"] >= 1
        assert result.recovery["timeouts"] >= 1

    def test_retries_exhausted_falls_back_in_process(self):
        """A persistent fault (times > max_retries) degrades gracefully."""
        result = solve_with_fault("kill:layer=3:times=10")
        assert_bit_for_bit(result)
        assert result.recovery["fallback_shards"] >= 1

    def test_no_fallback_raises_worker_crash(self):
        policy = dataclasses.replace(QUICK, max_retries=0, fallback=False)
        with pytest.raises(WorkerCrash) as excinfo:
            solve_with_fault("kill:layer=3:shard=0", policy)
        assert excinfo.value.layer == 3

    def test_no_fallback_raises_shard_timeout(self):
        policy = dataclasses.replace(
            QUICK, timeout=0.3, max_retries=0, fallback=False
        )
        with pytest.raises(ShardTimeout):
            solve_with_fault("hang:layer=2", policy)

    def test_through_solve_dispatch(self):
        """The acceptance path: solve(backend='parallel') under faults."""
        os.environ["REPRO_FAULT_SPEC"] = "kill:layer=2:shard=0"
        try:
            result = solve(PROBLEM, backend="parallel", workers=2, policy=QUICK)
        finally:
            os.environ.pop("REPRO_FAULT_SPEC", None)
        # dispatch routes small k through min_shard=MIN_SHARD (single
        # shard => parent path), so the fault may simply never fire — the
        # contract is the tables, not the recovery counters.
        assert_bit_for_bit(result)

    def test_recovery_log_shape(self):
        result = solve_with_fault("kill:layer=3:shard=1")
        rec = result.recovery
        for key in ("retries", "timeouts", "crashes", "respawns",
                    "fallback_shards", "degraded", "layers", "events"):
            assert key in rec
        assert [entry["layer"] for entry in rec["layers"]] == list(range(1, PROBLEM.k + 1))
        for entry in rec["layers"]:
            assert entry["mode"] in ("pool", "parent", "degraded")
            assert entry["seconds"] >= 0

    def test_fault_free_solve_has_clean_log(self):
        result = solve_dp_parallel(PROBLEM, workers=2, min_shard=1, policy=QUICK)
        assert_bit_for_bit(result)
        rec = result.recovery
        assert rec["retries"] == rec["crashes"] == rec["timeouts"] == 0
        assert rec["respawns"] == rec["fallback_shards"] == 0
        assert not rec["degraded"]


class TestLostShardIsLoud:
    def test_undercounted_layer_raises_solver_error(self, monkeypatch):
        """A layer completing with fewer masks than dispatched must raise
        even under `python -O` (this used to be a stripped `assert`)."""
        from repro.core import supervisor as sup

        real = sup.Supervisor.run_layer

        def undercount(self, layer_idx, shards, fallback):
            return real(self, layer_idx, shards, fallback) - 1

        monkeypatch.setattr(sup.Supervisor, "run_layer", undercount)
        with pytest.raises(SolverError, match="incomplete"):
            solve_dp_parallel(PROBLEM, workers=2, min_shard=1, policy=QUICK)


class TestCheckpointing:
    def test_hash_ignores_cosmetic_name(self):
        renamed = dataclasses.replace(PROBLEM, name="other-name")
        assert problem_content_hash(renamed) == problem_content_hash(PROBLEM)
        other = random_instance(6, 6, 4, seed=4)
        assert problem_content_hash(other) != problem_content_hash(PROBLEM)

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        save_checkpoint(path, PROBLEM, REF.cost, REF.best_action, 4)
        cost, best, completed = load_checkpoint(path, PROBLEM)
        assert completed == 4
        assert np.array_equal(cost, REF.cost)
        assert np.array_equal(best, REF.best_action)

    def test_missing_file_means_fresh_start(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.ckpt", PROBLEM) is None

    def test_wrong_problem_rejected(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        save_checkpoint(path, PROBLEM, REF.cost, REF.best_action, 4)
        other = random_instance(6, 6, 4, seed=4)
        with pytest.raises(CheckpointMismatch, match="different problem"):
            load_checkpoint(path, other)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointMismatch, match="unreadable"):
            load_checkpoint(path, PROBLEM)

    def test_interrupted_solve_resumes_without_recomputing(self, tmp_path):
        """Interrupt after layer j; the resume starts at j+1, not layer 1."""
        path = tmp_path / "solve.ckpt"
        policy = dataclasses.replace(
            QUICK, timeout=0.3, max_retries=0, fallback=False, checkpoint=path
        )
        with pytest.raises(ShardTimeout):
            solve_with_fault("hang:layer=4", policy)
        _, _, completed = load_checkpoint(path, PROBLEM)
        assert completed == 3  # layers 1..3 done, 4 was interrupted

        resumed = solve_dp_parallel(
            PROBLEM, workers=2, min_shard=1,
            policy=dataclasses.replace(QUICK, checkpoint=path),
        )
        assert_bit_for_bit(resumed)
        assert resumed.recovery["resumed_from_layer"] == 3
        # layers <= 3 were NOT recomputed
        assert [e["layer"] for e in resumed.recovery["layers"]] == [4, 5, 6]

    def test_completed_checkpoint_resumes_instantly(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        keep = dataclasses.replace(QUICK, checkpoint=path, keep_checkpoint=True)
        first = solve_dp_parallel(PROBLEM, workers=2, min_shard=1, policy=keep)
        assert_bit_for_bit(first)
        again = solve_dp_parallel(PROBLEM, workers=2, min_shard=1, policy=keep)
        assert_bit_for_bit(again)
        assert again.recovery["resumed_from_layer"] == PROBLEM.k
        assert again.recovery["layers"] == []  # nothing recomputed

    def test_checkpoint_through_solve_kwarg(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        keep = ResiliencePolicy(keep_checkpoint=True)
        result = solve(
            PROBLEM, backend="parallel", workers=2,
            checkpoint=str(path), policy=keep,
        )
        assert_bit_for_bit(result)
        assert path.exists()
        resumed = solve(
            PROBLEM, backend="parallel", workers=2,
            checkpoint=str(path), policy=keep,
        )
        assert resumed.recovery["resumed_from_layer"] == PROBLEM.k

    def test_checkpoint_removed_after_success_by_default(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        result = solve(PROBLEM, backend="parallel", workers=2, checkpoint=str(path))
        assert_bit_for_bit(result)
        assert not path.exists()

    def test_interrupted_solve_keeps_checkpoint(self, tmp_path):
        # Deletion is success-only: a failed solve leaves the checkpoint
        # for the next attempt even without keep_checkpoint.
        path = tmp_path / "solve.ckpt"
        policy = dataclasses.replace(
            QUICK, timeout=0.3, max_retries=0, fallback=False, checkpoint=path
        )
        with pytest.raises(ShardTimeout):
            solve_with_fault("hang:layer=4", policy)
        assert path.exists()

    def test_stale_tmp_swept_on_open(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        stale = tmp_path / "solve.ckpt.tmp"
        stale.write_bytes(b"half-written checkpoint from a dead process")
        result = solve_dp_parallel(
            PROBLEM, workers=2, min_shard=1,
            policy=dataclasses.replace(QUICK, checkpoint=path),
        )
        assert_bit_for_bit(result)
        assert not stale.exists()
        assert {"kind": "tmp-swept", "count": 1} in result.recovery["events"]

    def test_payload_checksum_detects_corruption(self, tmp_path):
        # The npz container can be internally consistent while the
        # payload it carries is not the payload that was saved; the
        # checksum closes that gap.
        path = tmp_path / "solve.ckpt"
        save_checkpoint(path, PROBLEM, REF.cost, REF.best_action, 4)
        with np.load(path) as npz:
            data = {key: np.array(npz[key]) for key in npz.files}
        data["cost"][3] += 1.0
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.raises(CheckpointMismatch, match="payload checksum"):
            load_checkpoint(path, PROBLEM)

    def test_version_1_checkpoint_rejected(self, tmp_path):
        # Pre-checksum files cannot be verified, so they are refused
        # (recomputing is always safe; trusting stale bytes is not).
        path = tmp_path / "solve.ckpt"
        save_checkpoint(path, PROBLEM, REF.cost, REF.best_action, 4)
        with np.load(path) as npz:
            data = {key: np.array(npz[key]) for key in npz.files}
        data["version"] = np.int64(1)
        del data["payload_sha"]
        with open(path, "wb") as fh:
            np.savez(fh, **data)
        with pytest.raises(CheckpointMismatch, match="version"):
            load_checkpoint(path, PROBLEM)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        save_checkpoint(path, PROBLEM, REF.cost, REF.best_action, 2)
        assert not (tmp_path / "solve.ckpt.tmp").exists()


class TestSharedTablesLifecycle:
    def test_context_manager_unlinks(self):
        with SharedTables(1 << 8) as tables:
            names = list(tables.names.values())
            for name in names:
                assert os.path.exists(f"/dev/shm/{name}")
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_close_is_idempotent(self):
        tables = SharedTables(1 << 8)
        tables.close()
        tables.close()  # second close must be a no-op, not a crash

    def test_exception_path_unlinks(self):
        try:
            with SharedTables(1 << 8) as tables:
                names = list(tables.names.values())
                raise RuntimeError("mid-solve crash")
        except RuntimeError:
            pass
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_sigterm_unlinks_segments(self, tmp_path):
        """A SIGTERM'd parent must not strand /dev/shm segments."""
        script = textwrap.dedent(
            """
            import sys, time
            sys.path.insert(0, %r)
            from repro.core.supervisor import SharedTables
            tables = SharedTables(1 << 10)
            print(" ".join(tables.names.values()), flush=True)
            time.sleep(60)
            """
        ) % os.path.join(os.path.dirname(__file__), "..", "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.PIPE, text=True
        )
        try:
            names = proc.stdout.readline().split()
            assert names and all(os.path.exists(f"/dev/shm/{n}") for n in names)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            proc.kill()
        assert proc.returncode == -signal.SIGTERM  # exit status stays honest
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)


def _ignore_sigterm():
    """Pool initializer: simulate a worker whose SIGTERM is lost.

    CPython drops signals that land between ``fork()`` and the child's
    ``PyOS_AfterFork_Child`` signal-state reset, so a repopulated worker
    can shrug off ``Pool.terminate()``'s SIGTERM and wedge the
    unconditional join.  SIG_IGN reproduces that end state on demand.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


class TestShutdownEscalation:
    def test_shutdown_sigkills_workers_that_ignore_sigterm(self, monkeypatch):
        import multiprocessing as mp
        import time

        from repro.core import supervisor as sup

        monkeypatch.setattr(sup, "_SHUTDOWN_GRACE", 0.5)
        log = sup.RecoveryLog()
        s = sup.Supervisor(
            QUICK,
            lambda: mp.get_context("fork").Pool(2, initializer=_ignore_sigterm),
            None,
            log,
        )
        pool = s._ensure_pool()
        # Park both workers in a long task so they cannot exit via the
        # task-queue sentinel and only SIGTERM (ignored) could free them.
        for _ in range(2):
            pool.apply_async(time.sleep, (60,))
        time.sleep(0.3)  # let the workers pick the tasks up
        t0 = time.monotonic()
        s.shutdown()
        assert time.monotonic() - t0 < 30.0  # bounded, not wedged
        assert any(e["kind"] == "shutdown_escalation" for e in log.events)
        assert s._pool is None

    def test_clean_shutdown_does_not_escalate(self):
        import multiprocessing as mp

        from repro.core import supervisor as sup

        log = sup.RecoveryLog()
        s = sup.Supervisor(QUICK, lambda: mp.get_context("fork").Pool(2), None, log)
        s._ensure_pool()
        s.shutdown()
        assert not any(e["kind"].startswith("shutdown") for e in log.events)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_retries": -1},
            {"backoff": -0.1},
            {"checkpoint_every": 0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(SolverError):
            ResiliencePolicy(**kwargs)

    def test_defaults_are_resilient(self):
        policy = ResiliencePolicy()
        assert policy.fallback
        assert policy.max_retries >= 1


class TestEnvKnobValidation:
    def test_repro_workers_non_integer(self, monkeypatch):
        from repro.core.parallel import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(InvalidProblem, match="REPRO_WORKERS"):
            default_workers()

    def test_repro_workers_negative(self, monkeypatch):
        from repro.core.parallel import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(InvalidProblem, match="REPRO_WORKERS"):
            default_workers()

    def test_repro_start_method_unknown(self, monkeypatch):
        from repro.core.parallel import _mp_context

        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(InvalidProblem, match="REPRO_START_METHOD"):
            _mp_context()
