"""Interactive diagnosis sessions."""

import pytest
from hypothesis import given, settings

from repro.core.heuristics import cost_per_resolution
from repro.core.sequential import solve_dp
from repro.core.session import DiagnosisSession
from tests.conftest import tt_problems


@pytest.fixture
def tree(tiny_problem):
    return solve_dp(tiny_problem).tree()


class TestSessionWalk:
    def test_manual_walk(self, tiny_problem, tree):
        s = DiagnosisSession(tree)
        assert not s.done
        assert s.current_action.name == "swab"
        assert s.valid_outcomes() == ("positive", "negative")
        s.record("positive")          # disease in {0,1}
        assert s.current_action.name == "drugA"
        s.record("failed")            # not disease 0
        assert s.current_action.name == "drugB"
        s.record("cured")
        assert s.done
        assert s.treated_set == 0b010
        assert s.total_cost == pytest.approx(1.0 + 4.0 + 5.0)

    def test_live_set_shrinks(self, tiny_problem, tree):
        s = DiagnosisSession(tree)
        assert s.live_set == 0b111
        s.record("negative")
        assert s.live_set == 0b100

    def test_transcript_records_everything(self, tree):
        s = DiagnosisSession(tree)
        s.run_against(1)
        assert [step.outcome for step in s.transcript] == [
            "positive",
            "failed",
            "cured",
        ]

    def test_describe(self, tree):
        s = DiagnosisSession(tree)
        assert "swab" in s.describe()
        s.run_against(0)
        assert "cured" in s.describe()


class TestValidation:
    def test_wrong_outcome_kind_rejected(self, tree):
        s = DiagnosisSession(tree)
        with pytest.raises(ValueError, match="test"):
            s.record("cured")  # swab is a test

    def test_finished_session_rejects_more(self, tree):
        s = DiagnosisSession(tree)
        s.run_against(0)
        with pytest.raises(RuntimeError):
            s.record("positive")
        with pytest.raises(RuntimeError):
            _ = s.current_action

    def test_invalid_tree_rejected(self, tiny_problem):
        from repro.core.tree import TTNode, TTTree

        bad = TTTree(tiny_problem, TTNode(action_index=1, live_set=0b111))
        with pytest.raises(ValueError):
            DiagnosisSession(bad)

    def test_inconsistent_outcomes_detected(self, tiny_problem, tree):
        """Claiming the terminal treatment failed contradicts the
        single-fault assumption."""
        s = DiagnosisSession(tree)
        s.record("negative")  # live = {2}; next is drugB covering {1,2}
        with pytest.raises(RuntimeError, match="single-fault"):
            s.record("failed")


class TestAgainstSimulate:
    @settings(max_examples=30)
    @given(tt_problems(max_k=4))
    def test_session_matches_tree_simulate(self, problem):
        tree = cost_per_resolution(problem)
        for j in range(problem.k):
            s = DiagnosisSession(tree)
            transcript = s.run_against(j)
            expected = tree.simulate(j)
            assert [t.action_index for t in transcript] == [
                e.action_index for e in expected
            ]
            assert s.total_cost == pytest.approx(sum(e.cost for e in expected))
            assert (s.treated_set >> j) & 1
