"""Tests for TT procedure trees: validation, cost, simulation."""

import pytest
from hypothesis import given, settings

from repro.core.heuristics import cost_per_resolution
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp
from repro.core.tree import TTNode, TTTree
from tests.conftest import tt_problems


@pytest.fixture
def tiny_tree(tiny_problem):
    return solve_dp(tiny_problem).tree()


class TestValidation:
    def test_optimal_tree_validates(self, tiny_tree):
        tiny_tree.validate()
        assert tiny_tree.is_successful()

    def test_missing_root(self, tiny_problem):
        with pytest.raises(ValueError):
            TTTree(tiny_problem, None).validate()

    def test_wrong_live_set_detected(self, tiny_problem):
        # drugB applied to the whole universe but recording the wrong set.
        node = TTNode(action_index=2, live_set=0b011)
        assert not TTTree(tiny_problem, node).is_successful()

    def test_abandoned_objects_detected(self, tiny_problem):
        # drugB on U treats {1,2} but abandons {0}: no continuation child.
        node = TTNode(action_index=2, live_set=0b111)
        assert not TTTree(tiny_problem, node).is_successful()

    def test_non_splitting_test_detected(self, tiny_problem):
        # swab on {0,1} ∩ {0,1} = everything: cannot appear on live {0,1}?
        # swab tests {0,1}; applied to live {0,1} it does not split.
        node = TTNode(action_index=0, live_set=0b011)
        assert not TTTree(tiny_problem, node).is_successful()

    def test_complete_procedure_validates(self, tiny_problem):
        # Hand-built: treat drugA on U (cures 0), then drugB (cures 1,2).
        inner = TTNode(action_index=2, live_set=0b110)
        root = TTNode(action_index=1, live_set=0b111, cont=inner)
        tree = TTTree(tiny_problem, root)
        tree.validate()

    def test_treatment_with_test_children_rejected(self, tiny_problem):
        bad = TTNode(
            action_index=1,
            live_set=0b111,
            pos=TTNode(action_index=2, live_set=0b110),
        )
        assert not TTTree(tiny_problem, bad).is_successful()


class TestCost:
    def test_known_cost(self, tiny_tree):
        assert tiny_tree.expected_cost() == pytest.approx(37.0)

    def test_handbuilt_cost(self, tiny_problem):
        # drugA on U charges 4*6=24; drugB on {1,2} charges 5*3=15 -> 39.
        inner = TTNode(action_index=2, live_set=0b110)
        root = TTNode(action_index=1, live_set=0b111, cont=inner)
        assert TTTree(tiny_problem, root).expected_cost() == pytest.approx(39.0)

    @settings(max_examples=40)
    @given(tt_problems(max_k=4))
    def test_recursive_cost_equals_path_cost(self, problem):
        """The DP-style node charge and the paper's per-object path sum
        are the same functional (the identity §1 relies on)."""
        tree = cost_per_resolution(problem)
        assert tree.expected_cost() == pytest.approx(tree.expected_cost_by_paths())


class TestSimulation:
    def test_every_object_cured(self, tiny_problem, tiny_tree):
        for j in range(tiny_problem.k):
            steps = tiny_tree.simulate(j)
            assert steps[-1].outcome == "cured"

    def test_simulation_path(self, tiny_tree):
        # Object 2 fails the swab and goes straight to drugB.
        steps = tiny_tree.simulate(2)
        outcomes = [s.outcome for s in steps]
        assert outcomes[0] == "negative"
        assert outcomes[-1] == "cured"

    def test_out_of_range_object(self, tiny_tree):
        with pytest.raises(ValueError):
            tiny_tree.simulate(99)

    @settings(max_examples=40)
    @given(tt_problems(max_k=4))
    def test_simulation_terminates_cured(self, problem):
        tree = cost_per_resolution(problem)
        for j in range(problem.k):
            steps = tree.simulate(j)
            assert steps[-1].outcome == "cured"
            # No action repeats on a greedy path with strictly shrinking sets
            assert len(steps) <= problem.n_actions * problem.k + problem.k


class TestStatsAndRender:
    def test_stats_keys(self, tiny_tree):
        s = tiny_tree.stats()
        assert s["nodes"] == 4
        assert s["depth"] == 3
        assert s["distinct_actions"] == 3

    def test_render_mentions_actions(self, tiny_tree):
        text = tiny_tree.render()
        assert "swab" in text and "drugA" in text and "drugB" in text
        assert "=>treated" in text

    def test_render_empty(self, tiny_problem):
        assert "empty" in TTTree(tiny_problem, None).render()

    def test_actions_used(self, tiny_tree):
        assert tiny_tree.actions_used() == {0, 1, 2}
