"""Binary-testing specialization: reduction, Huffman and entropy anchors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_testing import (
    BinaryTestingProblem,
    complete_test_instance,
    entropy_lower_bound,
    huffman_cost,
    safe_treatment_cost,
    solve_binary_testing,
    to_tt_problem,
)
from repro.core.sequential import solve_dp


class TestModelValidation:
    def test_weight_count(self):
        with pytest.raises(ValueError):
            BinaryTestingProblem(k=2, weights=(1.0,), tests=((1, 1.0),))

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError):
            BinaryTestingProblem(k=1, weights=(0.0,), tests=())

    def test_test_outside_universe(self):
        with pytest.raises(ValueError):
            BinaryTestingProblem(k=1, weights=(1.0,), tests=((0b10, 1.0),))


class TestReduction:
    def test_reduction_shape(self):
        btp = complete_test_instance([1.0, 2.0, 3.0])
        tt = to_tt_problem(btp)
        assert tt.n_tests == 6  # 2^3 - 2 subsets
        assert tt.n_treatments == 3
        assert tt.is_adequate()

    def test_treatment_cost_forbids_probing(self):
        btp = complete_test_instance([1.0, 1.0, 1.0, 1.0])
        c = safe_treatment_cost(btp)
        tt = to_tt_problem(btp, treatment_cost=c)
        tree = solve_dp(tt).tree()
        # Optimal procedure must treat only at singleton live sets.
        stack = [tree.root]
        while stack:
            node = stack.pop()
            act = tt.actions[node.action_index]
            if act.is_treatment:
                assert bin(node.live_set).count("1") == 1
            stack.extend(node.children())


class TestHuffmanAnchor:
    """DP == Huffman when every subset is a unit-cost test: the strongest
    independent validation of the TT recurrence."""

    @pytest.mark.parametrize(
        "weights",
        [
            [1.0, 1.0],
            [1.0, 1.0, 1.0, 1.0],
            [5.0, 3.0, 2.0, 1.0],
            [8.0, 4.0, 2.0, 1.0, 1.0],
            [1.0, 1.0, 2.0, 3.0, 5.0],
        ],
    )
    def test_dp_matches_huffman(self, weights):
        btp = complete_test_instance(weights)
        ident_cost, tree = solve_binary_testing(btp)
        assert ident_cost == pytest.approx(huffman_cost(weights))
        tree.validate()

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=9).map(float), min_size=2, max_size=5
        )
    )
    def test_dp_matches_huffman_property(self, weights):
        btp = complete_test_instance(weights)
        ident_cost, _ = solve_binary_testing(btp)
        assert ident_cost == pytest.approx(huffman_cost(weights))

    def test_single_object_needs_no_tests(self):
        btp = complete_test_instance([4.0])
        # k=1 has no nontrivial subsets, hence no tests; identification
        # is immediate.
        assert btp.tests == ()
        ident_cost, _ = solve_binary_testing(btp)
        assert ident_cost == pytest.approx(0.0)


class TestEntropyBound:
    def test_uniform_power_of_two(self):
        # 4 equal weights: H = 2 bits; total weight 4 -> bound 8; Huffman 8.
        assert entropy_lower_bound([1, 1, 1, 1]) == pytest.approx(8.0)
        assert huffman_cost([1, 1, 1, 1]) == pytest.approx(8.0)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=10, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    def test_huffman_within_one_bit_of_entropy(self, weights):
        lb = entropy_lower_bound(weights)
        hc = huffman_cost(weights)
        assert hc >= lb - 1e-9
        assert hc <= lb + sum(weights) + 1e-9  # redundancy < 1 bit/symbol

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            entropy_lower_bound([0.0, 0.0])


class TestHuffman:
    def test_two_items(self):
        assert huffman_cost([3.0, 5.0]) == pytest.approx(8.0)

    def test_singleton(self):
        assert huffman_cost([42.0]) == 0.0

    def test_textbook_example(self):
        # weights 1,1,2,3,5: merges 2, 4, 7, 12 -> internal sum 25
        assert huffman_cost([1, 1, 2, 3, 5]) == pytest.approx(25.0)
