"""Differential tests for the multi-core layer-parallel DP engine.

The contract under test is strict: `solve_dp_parallel` must reproduce
`solve_dp_reference` (and `solve_dp`) **bit-for-bit** — `cost` and
`best_action` exactly equal, not merely close — for any worker count and
any shard size, including degenerate (infeasible, single-object, empty)
specifications.  See the determinism contract in
`repro.core.sequential`'s module docstring.
"""

import types

import numpy as np
import pytest

from repro.core.generators import random_instance
from repro.core.parallel import (
    _shard_bounds,
    default_workers,
    solve_dp_parallel,
)
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp, solve_dp_reference


def assert_backends_identical(problem, workers=2, min_shard=16):
    """All three backends: identical tables, op_count, and trees."""
    ref = solve_dp_reference(problem)
    vec = solve_dp(problem)
    par = solve_dp_parallel(problem, workers=workers, min_shard=min_shard)
    for result, label in ((vec, "numpy"), (par, "parallel")):
        assert np.array_equal(result.cost, ref.cost), label
        assert np.array_equal(result.best_action, ref.best_action), label
        assert result.op_count == ref.op_count, label
    if ref.feasible:
        t_ref = ref.tree()
        t_par = par.tree()
        assert t_par.expected_cost() == pytest.approx(t_ref.expected_cost())
        assert t_par.expected_cost() == pytest.approx(ref.optimal_cost)
    else:
        with pytest.raises(ValueError):
            par.tree()
    return ref, par


def _instances():
    """>= 50 randomized instances: varying k, action mixes, degenerate specs."""
    cases = []
    seed = 0
    for rep in (0, 1):
        for k in (1, 2, 3, 4, 5, 6, 7, 8):
            for n_tests, n_treatments in ((1, 1), (k, max(1, k // 2)), (2 * k, k)):
                seed += 1
                cases.append(
                    random_instance(k, n_tests, n_treatments, seed=1000 * rep + seed)
                )
    # treatment-only and test-heavy corners
    for k in (2, 4, 6):
        cases.append(random_instance(k, 0, k, seed=100 + k))
        cases.append(random_instance(k, 3 * k, 1, seed=200 + k))
    # degenerate infeasible specs: some objects have no covering treatment
    for k in (2, 3, 5):
        cases.append(
            TTProblem.build(
                [1.0 + j for j in range(k)],
                [
                    Action.test({0}, 1.0) if k > 1 else Action.treatment({0}, 1.0),
                    Action.treatment({0}, 2.0),
                ],
                name=f"uncovered(k={k})",
            )
        )
    # exact-tie landscape: unit weights, duplicated unit-cost actions
    cases.append(
        TTProblem.build(
            [1.0, 1.0, 1.0],
            [
                Action.test({0, 1}, 1.0),
                Action.test({0, 1}, 1.0),  # exact duplicate -> forced tie
                Action.treatment({0, 1, 2}, 1.0),
                Action.treatment({0, 1, 2}, 1.0),
            ],
            name="ties",
        )
    )
    assert len(cases) >= 50
    return cases


class TestDifferential:
    @pytest.mark.parametrize(
        "problem", _instances(), ids=lambda p: p.name or "anon"
    )
    def test_backends_bit_for_bit(self, problem):
        assert_backends_identical(problem, workers=2, min_shard=8)

    @pytest.mark.slow
    def test_worker_count_invariance(self):
        """Same tables whatever the worker count or shard granularity."""
        problem = random_instance(9, n_tests=9, n_treatments=4, seed=42)
        ref = solve_dp_reference(problem)
        for workers, min_shard in ((1, 2048), (2, 4), (3, 16), (5, 1)):
            par = solve_dp_parallel(problem, workers=workers, min_shard=min_shard)
            assert np.array_equal(par.cost, ref.cost), (workers, min_shard)
            assert np.array_equal(par.best_action, ref.best_action), (
                workers,
                min_shard,
            )

    @pytest.mark.slow
    def test_medium_instance_matches_numpy(self):
        problem = random_instance(11, n_tests=10, n_treatments=6, seed=11)
        vec = solve_dp(problem)
        par = solve_dp_parallel(problem, workers=2)
        assert np.array_equal(par.cost, vec.cost)
        assert np.array_equal(par.best_action, vec.best_action)


class TestTieBreaking:
    def test_duplicate_actions_lowest_index_wins(self):
        """Exact ties must resolve to the lowest action index in every
        backend — the rule the dispatch/parallel layers lock in."""
        dup_test = Action.test({0, 2}, 1.5)
        dup_treat = Action.treatment({0, 1, 2, 3}, 2.0)
        problem = TTProblem.build(
            [1.0, 2.0, 1.0, 2.0],
            [dup_test, dup_test, dup_treat, dup_treat, dup_treat],
        )
        ref, par = assert_backends_identical(problem, workers=2, min_shard=1)
        full = problem.universe
        for s in range(1, full + 1):
            i = int(ref.best_action[s])
            if i < 0:
                continue
            act = problem.actions[i]
            # no earlier action with the same (kind, subset, cost) — i.e.
            # the same M[S,i] value by construction — may exist
            for earlier in range(i):
                ea = problem.actions[earlier]
                assert (ea.kind, ea.subset, ea.cost) != (
                    act.kind,
                    act.subset,
                    act.cost,
                ), f"tie at subset {s:#x} not broken toward lowest index"

    def test_shard_boundaries_cannot_flip_ties(self):
        """Force shard cuts through the tie-heavy middle layer."""
        dup = Action.test({0, 1, 2}, 1.0)
        problem = TTProblem.build(
            [1.0] * 6,
            [dup, dup, dup, Action.treatment(set(range(6)), 1.0)],
        )
        ref = solve_dp_reference(problem)
        for min_shard in (1, 2, 3, 5, 7):
            par = solve_dp_parallel(problem, workers=3, min_shard=min_shard)
            assert np.array_equal(par.best_action, ref.best_action), min_shard


class TestDegenerate:
    def test_single_object_universe(self):
        problem = TTProblem.build([2.5], [Action.treatment({0}, 3.0)])
        ref, par = assert_backends_identical(problem)
        assert par.optimal_cost == pytest.approx(3.0 * 2.5)
        assert par.best_action[1] == 0

    def test_single_object_untreatable(self):
        problem = TTProblem.build([1.0], [Action.test({0}, 1.0)])
        # a full-universe test is rejected by Action semantics only for
        # adequacy, not construction; the DP must mark it infeasible
        ref, par = assert_backends_identical(problem)
        assert not par.feasible

    def test_k_zero_guard(self):
        """`TTProblem` refuses k=0, but the engines guard it anyway (the
        layer loop would otherwise silently fall through untested)."""
        stub = types.SimpleNamespace(
            k=0,
            n_actions=1,
            weights=(),
            universe=0,
            subset_array=np.array([0], dtype=np.int64),
            cost_array=np.array([1.0]),
            test_mask_array=np.array([False]),
        )
        for solver in (solve_dp, solve_dp_parallel):
            result = solver(stub)
            assert result.cost.tolist() == [0.0]
            assert result.best_action.tolist() == [-1]
            assert result.op_count == 0

    def test_workers_validation(self):
        problem = TTProblem.build([1.0], [Action.treatment({0}, 1.0)])
        with pytest.raises(ValueError):
            solve_dp_parallel(problem, workers=0)


class TestSharding:
    def test_shard_bounds_cover_exactly(self):
        for lo, hi, workers, min_shard in (
            (0, 100, 4, 10),
            (5, 6, 8, 1),
            (0, 1000, 3, 1),
            (7, 7 + 4096, 8, 2048),
        ):
            shards = _shard_bounds(lo, hi, workers, min_shard)
            assert shards[0][0] == lo and shards[-1][1] == hi
            for (a, b), (c, d) in zip(shards, shards[1:]):
                assert b == c and a < b  # contiguous, non-empty
            assert len(shards) <= max(1, workers)

    def test_tiny_layers_stay_in_parent(self):
        # min_shard larger than any layer => single-shard path everywhere;
        # must still match the reference exactly
        problem = random_instance(5, 4, 3, seed=3)
        ref = solve_dp_reference(problem)
        par = solve_dp_parallel(problem, workers=4, min_shard=10_000)
        assert np.array_equal(par.cost, ref.cost)
        assert np.array_equal(par.best_action, ref.best_action)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3


class TestStartMethod:
    """`REPRO_START_METHOD` must swap the pool's start method without
    perturbing results: spawn re-imports worker modules instead of
    forking, so this is the differential test for state that fork
    silently inherits (globals, fault specs, shm names)."""

    @pytest.mark.slow
    def test_spawn_matches_reference_bit_for_bit(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        problem = random_instance(6, 6, 4, seed=11)
        ref = solve_dp_reference(problem)
        par = solve_dp_parallel(problem, workers=2, min_shard=1)
        assert np.array_equal(par.cost, ref.cost)
        assert np.array_equal(par.best_action, ref.best_action)
        assert par.op_count == ref.op_count

    def test_unknown_start_method_fails_loudly(self, monkeypatch):
        from repro.core.errors import InvalidProblem

        monkeypatch.setenv("REPRO_START_METHOD", "osactors")
        problem = random_instance(4, 3, 2, seed=5)
        with pytest.raises(InvalidProblem, match="REPRO_START_METHOD"):
            solve_dp_parallel(problem, workers=2, min_shard=1)
