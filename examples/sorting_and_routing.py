#!/usr/bin/env python3
"""The ASCEND/DESCEND toolbox beyond test-and-treatment.

The paper's §3 thesis is that algorithms written in ASCEND/DESCEND form
port to the cheap CCC network at a constant-factor slowdown.  This demo
runs the two classic members of the class end to end:

* **Bitonic sorting** — on the ideal hypercube, on the CCC emulator
  (pipelined vs naive schedules), and at the bit level on the BVM;
* **Beneš permutation routing** — "any permutation within O(log n) time
  if the control bits are precalculated" (§2), with the looping
  algorithm computing the control bits and the BVM executing the
  2·log n − 1 masked exchanges.

Run:  python examples/sorting_and_routing.py
"""

import numpy as np

from repro.bvm import ProgramBuilder
from repro.bvm.primitives import cycle_id_input_bits, processor_id
from repro.bvm.sortroute import benes_permute, bitonic_sort
from repro.hypercube import (
    CCC,
    Hypercube,
    benes_stage_count,
    bitonic_sort_program,
    bitonic_stage_count,
    make_state,
    permutation_program,
)


def sorting_demo() -> None:
    print("=" * 64)
    print("bitonic sort: hypercube vs CCC schedules vs BVM")
    print("=" * 64)
    ccc = CCC(2)  # 64 PEs
    rng = np.random.default_rng(0)
    vals = rng.integers(0, 1000, ccc.n).astype(float)
    prog = bitonic_sort_program(ccc.dims)

    st = make_state(ccc.dims, X=vals)
    Hypercube(ccc.dims).run(st, prog)
    print(f"ideal hypercube : {bitonic_stage_count(ccc.dims)} compare-exchange "
          f"stages, sorted: {(st['X'] == np.sort(vals)).all()}")

    for sched in ("pipelined", "naive"):
        st = make_state(ccc.dims, X=vals)
        stats = ccc.run(st, prog, schedule=sched)
        print(f"CCC {sched:<10}: {stats.route_steps} route steps "
              f"(slowdown {stats.slowdown:.2f}x), "
              f"sorted: {(st['X'] == np.sort(vals)).all()}")

    # Bit level: 8-bit keys on the BVM.
    W = 8
    bprog = ProgramBuilder(r=2)
    word = bprog.pool.alloc(W)
    pid = bprog.pool.alloc(2 + 4)
    processor_id(bprog, pid)
    bitonic_sort(bprog, word, pid)
    m = bprog.build_machine()
    m.feed_input(cycle_id_input_bits(bprog.Q))
    keys = rng.integers(0, 256, m.n)
    for w in range(W):
        m.poke(word[w], (keys >> w) & 1)
    cycles = bprog.run(m)
    got = np.zeros(m.n, dtype=int)
    for w in range(W):
        got |= m.read(word[w]).astype(int) << w
    print(f"BVM (bit level) : {cycles} single-bit cycles for 64 8-bit keys, "
          f"sorted: {(got == np.sort(keys)).all()}")
    print()


def routing_demo() -> None:
    print("=" * 64)
    print("Benes permutation routing with precalculated control bits")
    print("=" * 64)
    ccc = CCC(2)
    rng = np.random.default_rng(1)
    dest = rng.permutation(ccc.n)
    vals = np.arange(ccc.n).astype(float)
    want = np.empty(ccc.n)
    want[dest] = vals

    prog = permutation_program(dest)
    st = make_state(ccc.dims, X=vals)
    stats = ccc.run(st, prog, schedule="pipelined")
    print(f"ideal stages: {benes_stage_count(ccc.dims)} "
          f"(= 2*log n - 1 for n = {ccc.n})")
    print(f"CCC pipelined: {stats.route_steps} route steps "
          f"(slowdown {stats.slowdown:.2f}x), "
          f"routed: {(st['X'] == want).all()}")

    W = 8
    bprog = ProgramBuilder(r=2)
    word = bprog.pool.alloc(W)
    plan = benes_permute(bprog, word, dest)
    m = bprog.build_machine()
    plan.load_control_bits(m)  # the host precalculates; the machine routes
    keys = rng.integers(0, 256, m.n)
    for w in range(W):
        m.poke(word[w], (keys >> w) & 1)
    cycles = bprog.run(m)
    got = np.zeros(m.n, dtype=int)
    for w in range(W):
        got |= m.read(word[w]).astype(int) << w
    want_k = np.empty(m.n, dtype=int)
    want_k[dest] = keys
    print(f"BVM (bit level): {plan.n_stages} stages, {cycles} cycles for "
          f"8-bit payloads, routed: {(got == want_k).all()}")


if __name__ == "__main__":
    sorting_demo()
    routing_demo()
