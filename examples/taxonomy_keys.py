#!/usr/bin/env python3
"""Systematic biology: optimal identification keys, and the link to
binary testing.

Part 1 solves a taxonomy workload — dichotomous key couplets over a
random binary taxonomy plus per-species determinations — and compares
the optimal key against the textbook top-down key.

Part 2 demonstrates the reduction the paper builds on: binary testing
(pure identification) is the TT special case with singleton treatments,
and when every subset is available as a unit-cost test the optimum is
exactly a Huffman tree.

Run:  python examples/taxonomy_keys.py [k] [seed]
"""

import sys

from repro.core import (
    complete_test_instance,
    entropy_lower_bound,
    huffman_cost,
    information_gain,
    solve_binary_testing,
    solve_dp,
    taxonomy_instance,
)


def identification_keys(k: int, seed: int) -> None:
    problem = taxonomy_instance(k, seed=seed)
    print(f"taxonomy instance: {k} species, {problem.n_tests} key couplets")
    result = solve_dp(problem)
    tree = result.tree()
    print(f"optimal key: expected cost {result.optimal_cost:.3f}, "
          f"depth {tree.depth()}")
    greedy = information_gain(problem)
    print(f"greedy top-down key: expected cost {greedy.expected_cost():.3f} "
          f"({greedy.expected_cost() / result.optimal_cost:.3f}x optimal)")
    print()
    print(tree.render())
    print()


def huffman_connection() -> None:
    print("binary testing with all unit-cost subsets == Huffman coding:")
    weights = [13.0, 8.0, 5.0, 3.0, 2.0]
    btp = complete_test_instance(weights)
    ident_cost, tree = solve_binary_testing(btp)
    print(f"  abundances            : {weights}")
    print(f"  TT-DP identification  : {ident_cost:.3f}")
    print(f"  Huffman internal sum  : {huffman_cost(weights):.3f}")
    print(f"  entropy lower bound   : {entropy_lower_bound(weights):.3f}")
    assert abs(ident_cost - huffman_cost(weights)) < 1e-6
    print("  (DP == Huffman, both above the entropy bound)")


if __name__ == "__main__":
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    identification_keys(k, seed)
    huffman_connection()
