#!/usr/bin/env python3
"""The paper's speedup story, end to end.

1. Counts the sequential backward induction's work and the parallel
   program's measured route steps across instance sizes, reproducing the
   O(P / log P) speedup curve.
2. Runs identical ASCEND programs on the ideal hypercube and the CCC
   emulator to exhibit the constant-factor (4-6x) slowdown that makes
   the cheap 3n/2-link network viable.
3. Tabulates the machine-sizing claims: what a 2^20-PE (implementable)
   and 2^30-PE (feasible) BVM can handle.

Run:  python examples/speedup_study.py
"""

import numpy as np

from repro.core import random_instance, solve_dp
from repro.hypercube import CCC, Hypercube, make_state, min_reduce_program
from repro.ttpar import (
    machine_sizing_table,
    pad_actions,
    solve_tt_hypercube,
    speedup_curve,
)


def measured_speedup_table() -> None:
    print("measured word-operation speedup (counters, not wall clock):")
    print(f"{'k':>3} {'N':>4} {'P PEs':>8} {'seq ops':>10} {'par steps':>10} {'speedup':>9}")
    for k in range(3, 9):
        problem = random_instance(k, n_tests=k, n_treatments=k // 2 + 1, seed=k)
        dp = solve_dp(problem)
        par = solve_tt_hypercube(problem)
        assert np.allclose(dp.cost, par.cost)
        pe = pad_actions(problem).n_actions << k
        print(f"{k:>3} {problem.n_actions:>4} {pe:>8} {dp.op_count:>10} "
              f"{par.stats.route_steps:>10} {dp.op_count / par.stats.route_steps:>9.1f}")
    print()


def model_curve() -> None:
    print("model speedup curve, N = 2^k regime (the paper's O(P/log P)):")
    print(f"{'k':>3} {'P':>12} {'speedup':>14} {'P/log P':>14} {'ratio':>7}")
    for pt in speedup_curve(range(6, 21, 2), lambda k: 2**k):
        print(f"{pt.k:>3} {pt.pe_count:>12,} {pt.speedup:>14,.0f} "
              f"{pt.p_over_logp:>14,.0f} {pt.speedup / pt.p_over_logp:>7.3f}")
    print()


def ccc_slowdown() -> None:
    print("CCC slowdown for a full-cube ASCEND (claim: constant, 4-6x):")
    print(f"{'r':>3} {'n PEs':>7} {'cube steps':>11} {'CCC steps':>10} {'slowdown':>9}")
    rng = np.random.default_rng(0)
    for r in (1, 2, 3):
        ccc = CCC(r)
        vals = rng.uniform(0, 1, 1 << ccc.dims)
        st = make_state(ccc.dims, M=vals)
        ref = st.copy()
        prog = min_reduce_program(0, ccc.dims)
        Hypercube(ccc.dims).run(ref, prog)
        stats = ccc.run(st, prog, schedule="pipelined")
        assert st.equal(ref)
        print(f"{r:>3} {ccc.n:>7} {stats.ideal_dimops:>11} "
              f"{stats.route_steps:>10} {stats.slowdown:>9.2f}")
    print()


def sizing() -> None:
    print("machine sizing (paper: ~15 candidates at 2^30 PEs, ~20 if N=k^2):")
    print(f"{'PE budget':>10} {'k (N=2^k)':>10} {'k (N=k^2)':>10}")
    for row in machine_sizing_table():
        b = row["pe_budget"]
        print(f"{'2^' + str(b.bit_length() - 1):>10} "
              f"{row['max_k_exponential_actions']:>10} "
              f"{row['max_k_quadratic_actions']:>10}")


if __name__ == "__main__":
    measured_speedup_table()
    model_curve()
    ccc_slowdown()
    sizing()
