#!/usr/bin/env python3
"""Quickstart: define a test-and-treatment problem and solve it optimally.

A tiny clinic scenario with three candidate diseases, one lab test and
two drugs.  We build the problem, solve the dynamic program, print the
optimal procedure (a decision tree like the paper's Fig. 1), and then
run the same instance through every parallel realization in the library
to show they agree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Action, TTProblem, solve_dp
from repro.ttpar import solve_tt_bvm, solve_tt_ccc, solve_tt_hypercube


def main() -> None:
    # Universe: disease 0 (common), 1 (uncommon), 2 (moderately common);
    # weights are unnormalized prior likelihoods.
    problem = TTProblem.build(
        weights=[3.0, 1.0, 2.0],
        actions=[
            Action.test({0, 1}, cost=1.0, name="swab"),     # responds to 0 or 1
            Action.treatment({0}, cost=4.0, name="drugA"),  # cures disease 0
            Action.treatment({1, 2}, cost=5.0, name="drugB"),
        ],
        name="clinic",
    )
    print(problem.describe())
    print()

    # 1. Sequential dynamic programming (the Garey-style comparator).
    result = solve_dp(problem)
    print(f"optimal expected cost C(U) = {result.optimal_cost:g}")
    tree = result.tree()
    print(tree.render())
    print()

    # Simulate diagnosing each possible faulty disease.
    for disease in range(problem.k):
        steps = result.tree().simulate(disease)
        path = " -> ".join(
            f"{problem.actions[s.action_index].label(s.action_index)}[{s.outcome}]"
            for s in steps
        )
        print(f"if disease {disease}: {path}")
    print()

    # 2. The paper's parallel algorithm, three ways.
    hyper = solve_tt_hypercube(problem)
    ccc = solve_tt_ccc(problem)
    bvm = solve_tt_bvm(problem, width=16)

    print("parallel realizations (all must equal the DP):")
    print(f"  ideal hypercube : C(U) = {hyper.optimal_cost:g} "
          f"({hyper.stats.route_steps} word-route steps)")
    print(f"  CCC emulator    : C(U) = {ccc.optimal_cost:g} "
          f"(slowdown {ccc.ccc_stats.slowdown:.2f}x vs hypercube)")
    print(f"  BVM (bit level) : C(U) = {bvm.optimal_cost:g} "
          f"({bvm.cycles} single-bit machine cycles on CCC({bvm.r}))")

    assert np.allclose(hyper.cost, result.cost)
    assert np.allclose(ccc.cost, result.cost)
    assert np.allclose(bvm.cost, result.cost)
    print("\nall four agree.")


if __name__ == "__main__":
    main()
