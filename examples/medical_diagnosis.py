#!/usr/bin/env python3
"""Medical diagnosis & treatment — the paper's flagship application.

Generates a synthetic clinic: Zipf-distributed disease prevalences, lab
panels that respond to clusters of diseases, targeted drugs and a costly
broad-spectrum option.  Compares the optimal test-and-treatment
procedure against clinically-plausible greedy policies and against
"treat blindly, most likely first" — quantifying what the optimal mix
of testing and treating is worth.

Run:  python examples/medical_diagnosis.py [k] [seed]
"""

import sys

from repro.core import HEURISTICS, medical_instance, solve_dp


def main(k: int = 8, seed: int = 0) -> None:
    problem = medical_instance(k, seed=seed)
    print(problem.describe())
    print()

    result = solve_dp(problem)
    opt = result.optimal_cost
    tree = result.tree()

    print(f"optimal expected cost: {opt:.3f}")
    print(f"optimal procedure: {tree.node_count()} nodes, depth {tree.depth()}")
    print()
    print(tree.render())
    print()

    print(f"{'policy':<24}{'expected cost':>14}{'vs optimal':>12}")
    print(f"{'optimal DP':<24}{opt:>14.3f}{'1.000':>12}")
    for name, heuristic in sorted(HEURISTICS.items()):
        cost = heuristic(problem).expected_cost()
        print(f"{name:<24}{cost:>14.3f}{cost / opt:>12.3f}")

    # Where does the optimum spend its budget?
    test_nodes = sum(
        1 for i in tree.actions_used() if problem.actions[i].is_test
    )
    print(f"\nthe optimal procedure uses {test_nodes} distinct lab panels "
          f"and {len(tree.actions_used()) - test_nodes} distinct treatments")

    # Expected number of actions per patient, by disease.
    print("\nper-disease diagnostic paths:")
    for disease in range(problem.k):
        steps = tree.simulate(disease)
        cost = sum(s.cost for s in steps)
        print(f"  disease {disease} (P={problem.weights[disease]:.2f}): "
              f"{len(steps)} actions, cost {cost:.2f}")


if __name__ == "__main__":
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(k, seed)
