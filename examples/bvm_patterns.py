#!/usr/bin/env python3
"""Tour of the Boolean Vector Machine: the paper's Figs. 2-6, live.

Builds a 64-PE BVM (CCC with r=2: 16 cycles of 4 PEs) and runs the §4
algorithm library on the cycle-accurate simulator, printing the exact
patterns the paper illustrates:

* Fig. 2 — the machine as a bit array (registers x PEs),
* Fig. 3 — the cycle-ID pattern,
* Fig. 4 — the processor-ID pattern,
* Fig. 6 — the broadcast flood,
* bit-serial arithmetic: a vector saturating add, one instruction/bit.

Run:  python examples/bvm_patterns.py
"""

import numpy as np

from repro.bvm import (
    BVM,
    A,
    ProgramBuilder,
    R,
    render_cycle_grid,
    render_machine,
    render_pid_columns,
)
from repro.bvm import bitserial as bs
from repro.bvm.hyperops import route_dim
from repro.bvm.primitives import (
    broadcast_bit,
    cycle_id,
    cycle_id_input_bits,
    processor_id,
)


def fig2_machine_view() -> None:
    print("=" * 64)
    print("Fig. 2 — the BVM as a bit array (CCC r=2: 64 PEs)")
    print("=" * 64)
    m = BVM(r=2)
    rng = np.random.default_rng(0)
    m.poke(R(0), rng.integers(0, 2, m.n).astype(bool))
    m.poke(R(1), rng.integers(0, 2, m.n).astype(bool))
    print(render_machine(m, [("Reg. A", A), ("Reg. R[0]", R(0)), ("Reg. R[1]", R(1))],
                         max_pes=32))
    print()


def fig3_cycle_id() -> None:
    print("=" * 64)
    print("Fig. 3 — cycle-ID: PE (c, j) holds bit j of its cycle number c")
    print("=" * 64)
    prog = ProgramBuilder(r=2)
    dst = prog.pool.alloc1()
    cycle_id(prog, dst)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    cycles = prog.run(m)
    print(render_cycle_grid(m, dst))
    print(f"generated in {cycles} instructions (O(log n))\n")


def fig4_processor_id() -> None:
    print("=" * 64)
    print("Fig. 4 — processor-ID: every PE holds its own address")
    print("=" * 64)
    prog = ProgramBuilder(r=1)  # the figure's 8-PE machine
    pid = prog.pool.alloc(1 + 2)
    processor_id(prog, pid)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    cycles = prog.run(m)
    print(render_pid_columns(m, pid, max_pes=8))
    print(f"generated in {cycles} instructions (O(log^2 n))\n")


def fig6_broadcast() -> None:
    print("=" * 64)
    print("Fig. 6 — broadcasting PE 0's bit to all 64 PEs")
    print("=" * 64)
    prog = ProgramBuilder(r=2)
    value, sender = prog.pool.alloc(2)
    pid = prog.pool.alloc(2 + 4)
    processor_id(prog, pid)
    before = len(prog)
    broadcast_bit(prog, value, sender, pid, route_dim)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    seed = np.zeros(m.n, bool)
    seed[0] = True
    m.poke(value, seed.copy())
    m.poke(sender, seed.copy())
    prog.run(m)
    ok = m.read(value).all() and m.read(sender).all()
    print(f"value reached all {m.n} PEs: {ok}; "
          f"{len(prog) - before} instructions per broadcast bit\n")


def bit_serial_add() -> None:
    print("=" * 64)
    print("Bit-serial arithmetic — 64 saturating 8-bit adds at once")
    print("=" * 64)
    W = 8
    prog = ProgramBuilder(r=2)
    a = prog.pool.alloc(W)
    b = prog.pool.alloc(W)
    bs.add_into(prog, a, b)
    m = prog.build_machine()
    rng = np.random.default_rng(1)
    av = rng.integers(0, 200, m.n)
    bv = rng.integers(0, 200, m.n)
    for w in range(W):
        m.poke(a[w], (av >> w) & 1)
        m.poke(b[w], (bv >> w) & 1)
    cycles = prog.run(m)
    got = np.zeros(m.n, dtype=int)
    for w in range(W):
        got |= m.read(a[w]).astype(int) << w
    want = np.minimum(av + bv, 255)
    print(f"a[:8]    = {av[:8]}")
    print(f"b[:8]    = {bv[:8]}")
    print(f"a+b[:8]  = {got[:8]}  (saturating at 255)")
    print(f"correct on all 64 PEs: {(got == want).all()}; "
          f"{cycles} instructions for the whole vector add")


if __name__ == "__main__":
    fig2_machine_view()
    fig3_cycle_id()
    fig4_processor_id()
    fig6_broadcast()
    bit_serial_add()
