#!/usr/bin/env python3
"""Computer-system fault location and correction.

A machine of k modules with widely varying failure rates; bisection
probes over contiguous module ranges (the classic divide-and-conquer
pattern), per-module replacements, and whole-board swaps.  Shows how the
optimal procedure adapts to the failure-rate skew — probing into the
high-rate region first — and compares against binary-search-style
probing and blind replacement.

Run:  python examples/fault_location.py [k] [seed]
"""

import sys

from repro.core import (
    fault_location_instance,
    information_gain,
    solve_dp,
    treatment_only,
)


def main(k: int = 8, seed: int = 0) -> None:
    problem = fault_location_instance(k, seed=seed)
    weights = problem.weight_array
    print(f"fault-location instance: {k} modules, "
          f"{problem.n_tests} probes, {problem.n_treatments} repairs")
    print("module failure rates: "
          + ", ".join(f"m{j}={w:.2f}" for j, w in enumerate(weights)))
    print()

    result = solve_dp(problem)
    tree = result.tree()
    print(f"optimal expected repair cost: {result.optimal_cost:.3f}")
    print(tree.render())
    print()

    blind = treatment_only(problem).expected_cost()
    probe_first = information_gain(problem).expected_cost()
    print(f"{'strategy':<28}{'expected cost':>14}")
    print(f"{'optimal test-and-treat':<28}{result.optimal_cost:>14.3f}")
    print(f"{'greedy info-gain probing':<28}{probe_first:>14.3f}")
    print(f"{'blind replacement':<28}{blind:>14.3f}")

    # The most failure-prone module should be located quickly.
    hot = int(weights.argmax())
    cold = int(weights.argmin())
    hot_steps = len(tree.simulate(hot))
    cold_steps = len(tree.simulate(cold))
    print(f"\nhot module m{hot} (rate {weights[hot]:.2f}) resolved in "
          f"{hot_steps} actions; cold module m{cold} "
          f"(rate {weights[cold]:.2f}) in {cold_steps}")


if __name__ == "__main__":
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(k, seed)
