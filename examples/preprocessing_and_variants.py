#!/usr/bin/env python3
"""Preprocessing, reachability, and the minimax criterion.

Three extensions built around the core DP:

1. **Canonicalization** — optimum-preserving reductions (duplicate and
   dominated actions, indistinguishable objects) that shrink an instance
   before the exponential solve; the PE demand of the parallel machine
   shrinks with it.
2. **Top-down memoization** — on structured instances (here: a
   binary-search-style probe chain) only a quadratic sliver of the
   ``2^k`` lattice is reachable, so the sequential solver skips the rest.
3. **Minimax TT** — minimize the worst-case repair bill instead of the
   expected one, and compare the two optimal procedures.

Run:  python examples/preprocessing_and_variants.py
"""

from repro.core import (
    Action,
    TTProblem,
    canonicalize,
    medical_instance,
    solve_dp,
    solve_dp_topdown,
    solve_minimax,
)
from repro.util.bitops import mask_of


def preprocessing_demo() -> None:
    print("=" * 64)
    print("1. canonicalization")
    print("=" * 64)
    base = medical_instance(7, seed=3)
    # Bloat the instance with redundancy a real catalogue would contain.
    bloated = base.with_actions(
        list(base.actions)
        + [Action(a.kind, a.subset, a.cost * 1.5, a.name + "_generic") for a in base.actions[:4]]
        + [Action.treatment({0}, 50.0, "obsolete")]
    )
    report = canonicalize(bloated)
    print(f"actions: {report.original_n_actions} -> {report.problem.n_actions}, "
          f"objects: {report.original_k} -> {report.problem.k}")
    print(f"parallel PE demand shrinks to {report.pe_demand_ratio:.2%} of the bloated instance")
    a = solve_dp(bloated).optimal_cost
    b = solve_dp(report.problem).optimal_cost
    print(f"optimum preserved: {a:.4f} == {b:.4f}\n")


def reachability_demo() -> None:
    print("=" * 64)
    print("2. top-down memoization on a structured instance")
    print("=" * 64)
    k = 14
    tests = [Action.test(mask_of(range(0, i + 1)), 1.0) for i in range(k - 1)]
    problem = TTProblem.build(
        [1.0] * k, tests + [Action.treatment((1 << k) - 1, 4.0)]
    )
    td = solve_dp_topdown(problem)
    print(f"k={k}: lattice has {1 << k} subsets; "
          f"reachable (memoized): {td.reachable_subsets} "
          f"({td.lattice_fraction:.3%})")
    print(f"optimal expected cost: {td.optimal_cost:.3f}\n")


def minimax_demo() -> None:
    print("=" * 64)
    print("3. expected-cost vs worst-case-cost optima")
    print("=" * 64)
    problem = medical_instance(6, seed=1)
    exp = solve_dp(problem)
    mm = solve_minimax(problem)
    exp_tree = exp.tree()
    mm_tree = mm.tree()

    def worst(tree):
        return max(
            sum(s.cost for s in tree.simulate(j)) for j in range(problem.k)
        )

    print(f"{'criterion':<22}{'expected':>10}{'worst case':>12}")
    print(f"{'expected-optimal tree':<22}{exp_tree.expected_cost():>10.3f}{worst(exp_tree):>12.3f}")
    print(f"{'minimax-optimal tree':<22}{mm_tree.expected_cost():>10.3f}{worst(mm_tree):>12.3f}")
    print("\n(the minimax tree trades average cost for a lower ceiling)")


if __name__ == "__main__":
    preprocessing_demo()
    reachability_demo()
    minimax_demo()
